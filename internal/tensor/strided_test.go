package tensor

import (
	"math"
	"sync"
	"testing"
)

// colCopy materializes the column window [off, off+w) of m — the per-head
// copy the strided kernels replace. Tests compare strided results against
// dense kernels run on these copies; equality must be bitwise because both
// accumulate over the reduction dimension in the same order.
func colCopy(m *Matrix, off, w int) *Matrix {
	out := New(m.Rows, w)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[off:off+w])
	}
	return out
}

func randMatrix(rows, cols int, seed uint64) *Matrix {
	m := New(rows, cols)
	Gaussian(m, 1, NewRNG(seed))
	return m
}

func TestMatMulTStridedMatchesDenseOnCopies(t *testing.T) {
	a := randMatrix(7, 24, 1)
	b := randMatrix(5, 24, 2)
	for _, off := range []int{0, 8, 16} {
		w := 8
		want := MatMulT(nil, colCopy(a, off, w), colCopy(b, off, w))
		dst := New(7, 9) // wider than needed: write at a column offset
		dst.Fill(7)
		MatMulTStrided(dst, 3, a, off, b, off, w)
		for i := 0; i < 7; i++ {
			for j := 0; j < 5; j++ {
				if dst.At(i, 3+j) != want.At(i, j) {
					t.Fatalf("off %d: dst[%d][%d] = %v, want %v", off, i, j, dst.At(i, 3+j), want.At(i, j))
				}
			}
		}
	}
}

func TestMatMulStridedMatchesDenseOnCopies(t *testing.T) {
	probs := randMatrix(6, 10, 3) // wider than the used window
	v := randMatrix(4, 24, 4)
	want := MatMul(nil, colCopy(probs, 2, 4), colCopy(v, 8, 8))
	dst := New(6, 24)
	dst.Fill(-3)
	MatMulStrided(dst, 8, probs, 2, 4, v, 8, 8)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if dst.At(i, 8+j) != want.At(i, j) {
				t.Fatalf("dst[%d][%d] = %v, want %v", i, j, dst.At(i, 8+j), want.At(i, j))
			}
		}
	}
	// Columns outside the window must be untouched.
	if dst.At(0, 7) != -3 || dst.At(0, 16) != -3 {
		t.Fatal("MatMulStrided wrote outside its column window")
	}
	// The accumulate store adds a second product on top, term by term into
	// the existing values (same accumulation order as the kernel).
	want2 := want.Clone()
	p2, v2 := colCopy(probs, 4, 4), colCopy(v, 8, 8)
	for i := 0; i < want2.Rows; i++ {
		for c := 0; c < p2.Cols; c++ {
			av := p2.At(i, c)
			for j := 0; j < want2.Cols; j++ {
				want2.Data[i*want2.Cols+j] += av * v2.At(c, j)
			}
		}
	}
	MatMulStridedAcc(dst, 8, probs, 4, 4, v, 8, 8)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if dst.At(i, 8+j) != want2.At(i, j) {
				t.Fatalf("acc dst[%d][%d] = %v, want %v", i, j, dst.At(i, 8+j), want2.At(i, j))
			}
		}
	}
}

func TestTMatMulStridedMatchesDenseOnCopies(t *testing.T) {
	probs := randMatrix(6, 6, 5) // dense [k,n]
	dout := randMatrix(6, 24, 6)
	want := TMatMul(nil, probs, colCopy(dout, 16, 8))
	dst := New(6, 24)
	dst.Fill(2)
	TMatMulStrided(dst, 16, probs, dout, 16, 8)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if dst.At(i, 16+j) != want.At(i, j) {
				t.Fatalf("dst[%d][%d] = %v, want %v", i, j, dst.At(i, 16+j), want.At(i, j))
			}
		}
	}
	if dst.At(0, 15) != 2 {
		t.Fatal("TMatMulStrided wrote outside its column window")
	}
}

func TestStridedKernelsPanicOnBadWindows(t *testing.T) {
	a, b, dst := New(4, 8), New(4, 8), New(4, 8)
	for name, fn := range map[string]func(){
		"matmulT window":  func() { MatMulTStrided(dst, 0, a, 4, b, 0, 8) },
		"matmulT dst":     func() { MatMulTStrided(dst, 6, a, 0, b, 0, 4) },
		"matmul window":   func() { MatMulStrided(dst, 0, a, 0, 8, b, 4, 8) },
		"matmul reduce":   func() { MatMulStrided(dst, 0, a, 0, 5, b, 0, 4) },
		"tmatmul window":  func() { TMatMulStrided(dst, 0, a, b, 6, 4) },
		"tmatmul dstrows": func() { TMatMulStrided(New(3, 8), 0, a, b, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestScaledMaskedRowSoftmaxMatchesUnfused checks the fused kernel against
// the three separate passes it replaces (scale, -Inf causal mask, float64
// RowSoftmax). The comparison is within the fast-exp tolerance, not bitwise.
func TestScaledMaskedRowSoftmaxMatchesUnfused(t *testing.T) {
	for _, tc := range []struct {
		rows, cols, past int
		causal           bool
	}{
		{5, 5, 0, true},
		{5, 5, 0, false},
		{3, 10, 7, true}, // decode chunk attending a cached prefix
		{1, 1, 0, true},
	} {
		m := randMatrix(tc.rows, tc.cols, 11)
		ref := m.Clone()
		scale := float32(0.25)

		Scale(ref, ref, scale)
		if tc.causal {
			for i := 0; i < ref.Rows; i++ {
				row := ref.Row(i)
				for j := tc.past + i + 1; j < ref.Cols; j++ {
					row[j] = float32(math.Inf(-1))
				}
			}
		}
		RowSoftmax(ref)

		ScaledMaskedRowSoftmax(m, scale, tc.past, tc.causal)
		if !m.AllClose(ref, 2e-6) {
			t.Fatalf("%+v: fused softmax diverged from unfused reference", tc)
		}
		// Masked positions must be exactly zero, and rows must sum to ~1.
		for i := 0; i < m.Rows; i++ {
			var sum float32
			for j, v := range m.Row(i) {
				sum += v
				if tc.causal && j > tc.past+i && v != 0 {
					t.Fatalf("%+v: masked position [%d][%d] = %v", tc, i, j, v)
				}
			}
			if math.Abs(float64(sum)-1) > 1e-5 {
				t.Fatalf("%+v: row %d sums to %v", tc, i, sum)
			}
		}
	}
}

// TestExpFast32Tolerance pins the fast exponential's error budget: over the
// softmax-relevant domain (arguments ≤ 0 after max subtraction) and a wide
// general range, the relative error against float64 math.Exp stays under
// 1e-6 — the bound the fused-softmax contract documents.
func TestExpFast32Tolerance(t *testing.T) {
	const relTol = 1e-6
	check := func(x float32) {
		got := float64(ExpFast32(x))
		want := math.Exp(float64(x))
		if want == 0 {
			return
		}
		if rel := math.Abs(got-want) / want; rel > relTol {
			t.Fatalf("ExpFast32(%v) = %v, want %v (rel err %.3g)", x, got, want, rel)
		}
	}
	rng := NewRNG(13)
	for i := 0; i < 20000; i++ {
		check(-30 * rng.Float32()) // softmax domain
		check(80 * (rng.Float32() - 0.5) * 2)
		check(88.3 + 0.42*rng.Float32()) // top of the finite range (2^128 scaling)
	}
	for _, x := range []float32{0, -0.5, 0.5, 1, -1, -87, 88, 88.5, 88.72, 1e-10, -1e-10} {
		check(x)
	}
	if ExpFast32(float32(math.Inf(-1))) != 0 {
		t.Fatal("ExpFast32(-Inf) != 0")
	}
	if !math.IsInf(float64(ExpFast32(float32(math.Inf(1)))), 1) {
		t.Fatal("ExpFast32(+Inf) != +Inf")
	}
	if v := ExpFast32(float32(math.NaN())); v == v {
		t.Fatal("ExpFast32(NaN) did not propagate NaN")
	}
	if ExpFast32(-200) != 0 {
		t.Fatal("deep underflow must return 0")
	}
}

// TestMatMulOneHotRowsMatchesDense: the sparse-rows kernel is exact — the
// skip-zero branch only elides terms that contribute 0 — so it must agree
// with the branch-free dense kernel bitwise on finite inputs.
func TestMatMulOneHotRowsMatchesDense(t *testing.T) {
	b := randMatrix(16, 12, 21)
	// One-hot rows (the embedding-gather case).
	ids := []int{3, 0, 15, 3, 7}
	oneHot := New(5, 16)
	for i, id := range ids {
		oneHot.Set(i, id, 1)
	}
	got := MatMulOneHotRows(nil, oneHot, b)
	if !got.Equal(MatMul(nil, oneHot, b)) {
		t.Fatal("one-hot product differs from dense")
	}
	for i, id := range ids {
		for j, v := range got.Row(i) {
			if v != b.At(id, j) {
				t.Fatalf("row %d is not the gather of table row %d", i, id)
			}
		}
	}
	// General sparse rows (the GCN-adjacency case).
	sparse := New(9, 16)
	rng := NewRNG(22)
	for i := 0; i < sparse.Rows; i++ {
		for n := 0; n < 3; n++ {
			sparse.Set(i, rng.Intn(16), rng.Float32())
		}
	}
	if !MatMulOneHotRows(nil, sparse, b).Equal(MatMul(nil, sparse, b)) {
		t.Fatal("sparse-rows product differs from dense")
	}
}

func TestBlockedTranspose(t *testing.T) {
	// Cover non-multiple-of-block shapes on both axes.
	for _, shape := range [][2]int{{1, 1}, {3, 70}, {70, 3}, {33, 65}, {64, 64}} {
		m := randMatrix(shape[0], shape[1], 31)
		got := m.T()
		if got.Rows != m.Cols || got.Cols != m.Rows {
			t.Fatalf("T shape %dx%d", got.Rows, got.Cols)
		}
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if got.At(j, i) != m.At(i, j) {
					t.Fatalf("shape %v: T[%d][%d] mismatch", shape, j, i)
				}
			}
		}
	}
}

func TestWorkspaceReusesBuffersAcrossResets(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 8)
	b := ws.GetZeroed(2, 2)
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}
	ints := ws.GetInts(6)
	view := ws.RowView(a, 1, 3)
	if view.Rows != 2 || &view.Data[0] != &a.Data[8] {
		t.Fatal("RowView does not alias the parent rows")
	}
	ws.Reset()
	if got := ws.Get(4, 8); got != a {
		t.Fatal("same-shape Get after Reset did not reuse the buffer")
	}
	// A smaller request after Reset reuses the slot's capacity.
	if got := ws.Get(1, 3); got != b || cap(got.Data) < 4 {
		t.Fatal("second slot not reused for smaller shape")
	}
	if got := ws.GetInts(4); cap(got) < cap(ints) {
		t.Fatal("int scratch not reused")
	}
	// Steady state is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		m := ws.Get(4, 8)
		_ = ws.RowView(m, 0, 2)
		_ = ws.GetInts(6)
		_ = ws.GetZeroed(2, 2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state workspace use allocated %v times per run", allocs)
	}
}

func TestNilWorkspaceDegradesToAllocation(t *testing.T) {
	var ws *Workspace
	m := ws.Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatal("nil Get shape")
	}
	if got := ws.GetZeroed(2, 2); got.Rows != 2 {
		t.Fatal("nil GetZeroed shape")
	}
	if got := ws.GetInts(5); len(got) != 5 {
		t.Fatal("nil GetInts length")
	}
	if got := ws.RowView(m, 1, 2); got.Rows != 1 || &got.Data[0] != &m.Data[4] {
		t.Fatal("nil RowView must alias")
	}
	ws.Reset()       // no-op
	PutWorkspace(ws) // no-op
}

// TestWorkspacePoolConcurrent hammers the pool from many goroutines under
// -race: distinct borrowers must never observe each other's buffers.
func TestWorkspacePoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				ws := GetWorkspace()
				m := ws.Get(8, 8)
				m.Fill(float32(g))
				for _, v := range m.Data {
					if v != float32(g) {
						errs <- "workspace buffer shared across goroutines"
						PutWorkspace(ws)
						return
					}
				}
				PutWorkspace(ws)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestTanhFast32Tolerance pins the fast tanh against float64 math.Tanh
// across the argument range, including saturation and special values.
func TestTanhFast32Tolerance(t *testing.T) {
	var maxErr float64
	for x := -12.0; x <= 12.0; x += 0.001 {
		got := float64(TanhFast32(float32(x)))
		want := math.Tanh(x)
		if err := math.Abs(got - want); err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 2e-6 {
		t.Fatalf("TanhFast32 max abs error %.3g, want ≤ 2e-6", maxErr)
	}
	if TanhFast32(float32(math.Inf(1))) != 1 || TanhFast32(float32(math.Inf(-1))) != -1 {
		t.Fatal("TanhFast32 must saturate at ±Inf")
	}
	if v := TanhFast32(float32(math.NaN())); v == v {
		t.Fatal("TanhFast32 must propagate NaN")
	}
	if TanhFast32(0) != 0 {
		t.Fatal("TanhFast32(0) must be exactly 0")
	}
}
