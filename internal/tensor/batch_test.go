package tensor

import "testing"

func TestOffsets(t *testing.T) {
	got := Offsets([]int{3, 0, 2})
	want := []int{0, 3, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", got, want)
		}
	}
}

func TestRowViewAliases(t *testing.T) {
	m := New(4, 3)
	v := m.RowView(1, 3)
	if v.Rows != 2 || v.Cols != 3 {
		t.Fatalf("view shape %dx%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("row view does not alias parent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range view")
		}
	}()
	m.RowView(2, 5)
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := NewRNG(1)
	mats := []*Matrix{New(2, 4), New(3, 4), New(1, 4)}
	for _, m := range mats {
		Gaussian(m, 1, rng)
	}
	packed, offsets := PackRows(mats)
	if packed.Rows != 6 || packed.Cols != 4 {
		t.Fatalf("packed shape %dx%d", packed.Rows, packed.Cols)
	}
	views := UnpackRows(packed, offsets)
	for i, v := range views {
		if !v.Equal(mats[i]) {
			t.Fatalf("segment %d does not round trip", i)
		}
	}
}

func TestPackRowsEmpty(t *testing.T) {
	packed, offsets := PackRows(nil)
	if packed.Rows != 0 || len(offsets) != 1 || offsets[0] != 0 {
		t.Fatalf("empty pack = %v offsets %v", packed, offsets)
	}
}

func TestMatMulBlockedMatchesMatMul(t *testing.T) {
	rng := NewRNG(2)
	for _, shape := range [][3]int{{1, 1, 1}, {5, 7, 3}, {64, 200, 48}, {300, 33, 65}} {
		n, k, p := shape[0], shape[1], shape[2]
		a := New(n, k)
		b := New(k, p)
		Gaussian(a, 1, rng)
		Gaussian(b, 1, rng)
		want := MatMul(nil, a, b)
		got := MatMulBlocked(nil, a, b)
		if !got.Equal(want) {
			t.Fatalf("blocked matmul differs from reference at %dx%dx%d", n, k, p)
		}
		// Reused dst must be zeroed first.
		got2 := MatMulBlocked(got, a, b)
		if !got2.Equal(want) {
			t.Fatalf("blocked matmul with reused dst differs at %dx%dx%d", n, k, p)
		}
	}
}

func TestMatMulBlockedShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape mismatch panic")
		}
	}()
	MatMulBlocked(nil, a, b)
}
