package tensor

import (
	"fmt"
	"math"
)

// Strided attention kernels.
//
// Multi-head attention addresses head h of a row-major [T, dModel] activation
// matrix as the column window [h·dh, (h+1)·dh). The kernels below operate
// directly on such windows — a (matrix, column-offset, width) triple — so
// attention heads are views into the projection matrices rather than per-head
// copies. Combined with a Workspace (workspace.go) for the score buffers this
// makes the steady-state inference path allocation- and copy-free.
//
// Accumulation order over the reduction dimension is strictly increasing in
// every kernel, exactly as in MatMul/MatMulT/TMatMul, so results are bitwise
// identical to running the dense kernels on materialized head copies.

// MatMulTStrided computes the cross product of two column windows without
// materializing either: for every row i of a and row j of b,
//
//	dst[i][doff+j] = Σ_{c<w} a[i][aoff+c] · b[j][boff+c]
//
// a's window is [a.Rows, w] starting at column aoff, b's is [b.Rows, w] at
// boff; the result lands in dst columns [doff, doff+b.Rows). This is the
// qh·khᵀ score kernel: with dst a [Tq, Tpast+Tq] score matrix, doff selects
// the past-key or current-key block.
func MatMulTStrided(dst *Matrix, doff int, a *Matrix, aoff int, b *Matrix, boff, w int) {
	if aoff < 0 || aoff+w > a.Cols || boff < 0 || boff+w > b.Cols {
		panic(fmt.Sprintf("tensor: matmulT strided window [%d,+%d) of %d cols × [%d,+%d) of %d cols", aoff, w, a.Cols, boff, w, b.Cols))
	}
	if dst.Rows != a.Rows || doff < 0 || doff+b.Rows > dst.Cols {
		panic(fmt.Sprintf("tensor: matmulT strided dst %dx%d cannot hold %dx%d at col %d", dst.Rows, dst.Cols, a.Rows, b.Rows, doff))
	}
	n, p := a.Rows, b.Rows
	if !parallelWorth(n, w*p) {
		matMulTStridedRows(dst, doff, a, aoff, b, boff, w, 0, n)
		return
	}
	parallelRows(n, w*p, func(lo, hi int) {
		matMulTStridedRows(dst, doff, a, aoff, b, boff, w, lo, hi)
	})
}

func matMulTStridedRows(dst *Matrix, doff int, a *Matrix, aoff int, b *Matrix, boff, w, lo, hi int) {
	p := b.Rows
	ac, bc, dc := a.Cols, b.Cols, dst.Cols
	for i := lo; i < hi; i++ {
		ar := a.Data[i*ac+aoff : i*ac+aoff+w]
		dr := dst.Data[i*dc+doff : i*dc+doff+p]
		for j := 0; j < p; j++ {
			br := b.Data[j*bc+boff : j*bc+boff+w]
			dr[j] = dotUnrolled4(ar, br)
		}
	}
}

// dotUnrolled4 is the shared inner product of the dot-form kernels (MatMulT
// and its strided twin), split into four independent partial sums so the
// floating-point adds pipeline instead of serializing on a single 4-cycle
// dependency chain — ~2× on the attention-score kernel, whose reduction
// width (one head) is only a few dozen elements. Both kernels calling this
// one function is what keeps their results bitwise identical to each other.
func dotUnrolled4(ar, br []float32) float32 {
	var s0, s1, s2, s3 float32
	c := 0
	for ; c+4 <= len(ar); c += 4 {
		s0 += ar[c] * br[c]
		s1 += ar[c+1] * br[c+1]
		s2 += ar[c+2] * br[c+2]
		s3 += ar[c+3] * br[c+3]
	}
	for ; c < len(ar); c++ {
		s0 += ar[c] * br[c]
	}
	return (s0 + s1) + (s2 + s3)
}

// MatMulStrided multiplies a column window of a against a column window of b,
// assigning into a column window of dst:
//
//	dst[i][doff+j] = Σ_{c<aw} a[i][aoff+c] · b[c][boff+j]   (j < w)
//
// a's window is [a.Rows, aw] at column aoff, b's is [aw, w] at boff. This is
// the probs·vh output kernel: probs live in a (possibly wider) score matrix
// and the result lands directly in the concat matrix's head window.
func MatMulStrided(dst *Matrix, doff int, a *Matrix, aoff, aw int, b *Matrix, boff, w int) {
	matMulStrided(dst, doff, a, aoff, aw, b, boff, w, false)
}

// MatMulStridedAcc is MatMulStrided that accumulates into dst instead of
// assigning — the strided accumulate store used to add the current-chunk
// attention output on top of the cached-prefix contribution.
func MatMulStridedAcc(dst *Matrix, doff int, a *Matrix, aoff, aw int, b *Matrix, boff, w int) {
	matMulStrided(dst, doff, a, aoff, aw, b, boff, w, true)
}

func matMulStrided(dst *Matrix, doff int, a *Matrix, aoff, aw int, b *Matrix, boff, w int, acc bool) {
	if aoff < 0 || aoff+aw > a.Cols || boff < 0 || boff+w > b.Cols || aw > b.Rows {
		panic(fmt.Sprintf("tensor: matmul strided window [%d,+%d) of %d cols × %dx[%d,+%d)", aoff, aw, a.Cols, b.Rows, boff, w))
	}
	if dst.Rows != a.Rows || doff < 0 || doff+w > dst.Cols {
		panic(fmt.Sprintf("tensor: matmul strided dst %dx%d cannot hold %dx%d at col %d", dst.Rows, dst.Cols, a.Rows, w, doff))
	}
	n := a.Rows
	if !parallelWorth(n, aw*w) {
		matMulStridedRows(dst, doff, a, aoff, aw, b, boff, w, acc, 0, n)
		return
	}
	parallelRows(n, aw*w, func(lo, hi int) {
		matMulStridedRows(dst, doff, a, aoff, aw, b, boff, w, acc, lo, hi)
	})
}

func matMulStridedRows(dst *Matrix, doff int, a *Matrix, aoff, aw int, b *Matrix, boff, w int, acc bool, lo, hi int) {
	ac, bc, dc := a.Cols, b.Cols, dst.Cols
	for i := lo; i < hi; i++ {
		ar := a.Data[i*ac+aoff : i*ac+aoff+aw]
		dr := dst.Data[i*dc+doff : i*dc+doff+w]
		if !acc {
			for j := range dr {
				dr[j] = 0
			}
		}
		// Four a-elements per pass over dr: the destination load/store per
		// output element is amortized over four multiply-adds. Go's
		// left-to-right evaluation keeps the accumulation order of the
		// single-element loop, so results stay bitwise identical.
		c := 0
		for ; c+4 <= aw; c += 4 {
			a0, a1, a2, a3 := ar[c], ar[c+1], ar[c+2], ar[c+3]
			b0 := b.Data[c*bc+boff : c*bc+boff+w]
			b1 := b.Data[(c+1)*bc+boff : (c+1)*bc+boff+w]
			b2 := b.Data[(c+2)*bc+boff : (c+2)*bc+boff+w]
			b3 := b.Data[(c+3)*bc+boff : (c+3)*bc+boff+w]
			for j, bv := range b0 {
				v := dr[j]
				v += a0 * bv
				v += a1 * b1[j]
				v += a2 * b2[j]
				v += a3 * b3[j]
				dr[j] = v
			}
		}
		for ; c < aw; c++ {
			av := ar[c]
			br := b.Data[c*bc+boff : c*bc+boff+w]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// TMatMulStrided computes aᵀ times a column window of b, assigning into a
// column window of dst:
//
//	dst[i][doff+j] = Σ_{r<a.Rows} a[r][i] · b[r][boff+j]   (i < a.Cols, j < w)
//
// a is dense [k, n]; b's window is [k, w] at column boff. This is the
// backward-pass probsᵀ·dOut kernel, writing per-head gradients directly into
// the packed dV/dK head window.
func TMatMulStrided(dst *Matrix, doff int, a *Matrix, b *Matrix, boff, w int) {
	if a.Rows != b.Rows || boff < 0 || boff+w > b.Cols {
		panic(fmt.Sprintf("tensor: tmatmul strided (%dx%d)ᵀ × %dx[%d,+%d)", a.Rows, a.Cols, b.Rows, boff, w))
	}
	if dst.Rows != a.Cols || doff < 0 || doff+w > dst.Cols {
		panic(fmt.Sprintf("tensor: tmatmul strided dst %dx%d cannot hold %dx%d at col %d", dst.Rows, dst.Cols, a.Cols, w, doff))
	}
	k, n := a.Rows, a.Cols
	if !parallelWorth(n, k*w) {
		tMatMulStridedRows(dst, doff, a, b, boff, w, 0, n)
		return
	}
	parallelRows(n, k*w, func(lo, hi int) {
		tMatMulStridedRows(dst, doff, a, b, boff, w, lo, hi)
	})
}

func tMatMulStridedRows(dst *Matrix, doff int, a *Matrix, b *Matrix, boff, w, lo, hi int) {
	k, n := a.Rows, a.Cols
	bc, dc := b.Cols, dst.Cols
	for i := lo; i < hi; i++ {
		dr := dst.Data[i*dc+doff : i*dc+doff+w]
		for j := range dr {
			dr[j] = 0
		}
	}
	for r := 0; r < k; r++ {
		ar := a.Data[r*n : (r+1)*n]
		br := b.Data[r*bc+boff : r*bc+boff+w]
		for i := lo; i < hi; i++ {
			av := ar[i]
			dr := dst.Data[i*dc+doff : i*dc+doff+w]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// ScaledMaskedRowSoftmax fuses the three per-row passes of attention-score
// normalization — scale by `scale`, causal masking, softmax — into one kernel
// using the float32 fast exponential (ExpFast32).
//
// Row i's valid window is columns [0, lim) with lim = past+i+1 when causal
// (the row's query position attends all `past` cached keys plus current keys
// 0..i) and lim = m.Cols otherwise. The window receives softmax(scale·row);
// columns at and beyond lim are set to exactly 0, so masked positions never
// materialize a -Inf score and downstream A·V products see clean zeros.
func ScaledMaskedRowSoftmax(m *Matrix, scale float32, past int, causal bool) {
	if !parallelWorth(m.Rows, m.Cols*4) {
		scaledMaskedRowSoftmaxRows(m, scale, past, causal, 0, m.Rows)
		return
	}
	parallelRows(m.Rows, m.Cols*4, func(lo, hi int) {
		scaledMaskedRowSoftmaxRows(m, scale, past, causal, lo, hi)
	})
}

func scaledMaskedRowSoftmaxRows(m *Matrix, scale float32, past int, causal bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		lim := m.Cols
		if causal && past+i+1 < lim {
			lim = past + i + 1
		}
		valid := row[:lim]
		maxv := scale * valid[0]
		for _, v := range valid[1:] {
			if sv := scale * v; sv > maxv {
				maxv = sv
			}
		}
		var sum float32
		for j, v := range valid {
			e := ExpFast32(scale*v - maxv)
			valid[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range valid {
			valid[j] *= inv
		}
		for j := lim; j < m.Cols; j++ {
			row[j] = 0
		}
	}
}

// Fast float32 exponential constants: e^x = 2^n · e^f with n = round(x·log₂e)
// and f = x - n·ln2 reduced via a two-part ln2 so the reduction itself costs
// no precision. |f| ≤ ln2/2 ≈ 0.3466, where the degree-6 Taylor polynomial's
// truncation error (f⁷/5040 ≈ 3e-7 relative) sits below float32 rounding
// noise; the measured error against float64 math.Exp is pinned by
// TestExpFast32Tolerance.
const (
	expLog2E float32 = 1.4426950408889634
	expLn2Hi float32 = 6.9314575195e-01
	expLn2Lo float32 = 1.4286067653e-06
)

// ExpFast32 approximates e^x in pure float32 arithmetic. Inputs below the
// float32 normal range (including -Inf, the conventional masked-score value)
// return exactly 0; inputs above the representable range return +Inf.
func ExpFast32(x float32) float32 {
	if x != x { // NaN propagates
		return x
	}
	if x <= -87.33655 {
		return 0
	}
	if x >= 88.72283 {
		return float32(math.Inf(1))
	}
	t := x * expLog2E
	var n int32
	if t >= 0 {
		n = int32(t + 0.5)
	} else {
		n = int32(t - 0.5)
	}
	fn := float32(n)
	f := (x - fn*expLn2Hi) - fn*expLn2Lo
	p := float32(1.0 / 720)
	p = p*f + 1.0/120
	p = p*f + 1.0/24
	p = p*f + 1.0/6
	p = p*f + 0.5
	p = p*f + 1
	p = p*f + 1
	if n >= 128 {
		// 2^n is not encodable as a float32 exponent, but p·2^n may still be
		// finite (x up to ln(MaxFloat32) ≈ 88.72): scale by 2^127, then by 2.
		return p * math.Float32frombits(254<<23) * 2
	}
	return p * math.Float32frombits(uint32(n+127)<<23)
}

// TanhFast32 approximates tanh(x) in pure float32 arithmetic via the fast
// exponential: tanh(x) = (e^{2x} − 1)/(e^{2x} + 1). Relative error tracks
// ExpFast32's (~1e-6, pinned by TestTanhFast32Tolerance); |x| ≥ 10 saturates
// to ±1 exactly (float32 tanh rounds to ±1 from |x| ≈ 9.01). It replaces
// float64 math.Tanh in the GELU activation, where the conversion round trip
// and float64 exp dominated the activation's cost.
func TanhFast32(x float32) float32 {
	if x != x { // NaN propagates
		return x
	}
	if x >= 10 {
		return 1
	}
	if x <= -10 {
		return -1
	}
	e := ExpFast32(2 * x)
	return (e - 1) / (e + 1)
}

// MatMulOneHotRows computes a×b for an `a` whose rows are mostly zero — the
// sparse-rows kernel that inherited the skip-zero branch removed from the
// dense MatMul/TMatMul inner loops. For a one-hot `a` each output row is a
// single gather of a row of b, which is exactly what the embedding layer's
// table lookup computes directly (Embedding.Infer is the id-indexed
// specialization of this kernel); the row-normalized GCN adjacency product is
// the general sparse-rows case.
func MatMulOneHotRows(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic(fmt.Sprintf("tensor: matmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
		}
		if dst == a || dst == b {
			panic("tensor: matmul dst must not alias an input")
		}
		dst.Zero()
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	parallelRows(n, k*p, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			dr := dst.Data[i*p : (i+1)*p]
			for kk, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Data[kk*p : (kk+1)*p]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	return dst
}
