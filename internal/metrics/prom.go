package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) using only the standard library — the repo takes no
// client_golang dependency for what is a ~100-line text format. Every
// anomalyd replica and the anomalygw gateway serve a GET /metrics endpoint
// built on it, which is what lets the gateway's saturation view and a
// human's dashboards read the same numbers.
//
// Usage: one PromWriter per scrape. Gauge/Counter append samples; the
// # HELP and # TYPE headers are emitted once per metric name, on first use,
// so callers may emit a labeled family in any grouping. Not safe for
// concurrent use.
type PromWriter struct {
	b      strings.Builder
	headed map[string]bool
}

// Gauge appends one gauge sample. labels are alternating key, value pairs.
func (w *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	w.sample(name, help, "gauge", v, labels)
}

// Counter appends one counter sample. By Prometheus convention the name
// should end in _total. labels are alternating key, value pairs.
func (w *PromWriter) Counter(name, help string, v float64, labels ...string) {
	w.sample(name, help, "counter", v, labels)
}

func (w *PromWriter) sample(name, help, typ string, v float64, labels []string) {
	if w.headed == nil {
		w.headed = make(map[string]bool)
	}
	if !w.headed[name] {
		w.headed[name] = true
		fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
	}
	w.b.WriteString(name)
	if len(labels) >= 2 {
		w.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			w.b.WriteString(labels[i])
			w.b.WriteString(`="`)
			w.b.WriteString(escapeLabel(labels[i+1]))
			w.b.WriteByte('"')
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(v))
	w.b.WriteByte('\n')
}

// Bytes returns the accumulated exposition body.
func (w *PromWriter) Bytes() []byte { return []byte(w.b.String()) }

// ContentType is the exposition format's Content-Type header value.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatValue renders a sample value: integers without an exponent or
// trailing zeros (counters read naturally), everything else via %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
