package metrics

import (
	"math"
	"testing"
)

func TestPercentileBasics(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Fatalf("singleton percentile = %v, want 7", got)
	}
	s := []float64{4, 1, 3, 2} // unsorted on purpose
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := Percentile(s, 1); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
	if got := Percentile(s, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 2.5", got)
	}
	// Input must not be reordered.
	if s[0] != 4 || s[3] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileInterpolatesAndClamps(t *testing.T) {
	s := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := Percentile(s, 0.99); math.Abs(got-99) > 1e-9 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := Percentile(s, -1); got != 0 {
		t.Fatalf("q<0 = %v, want 0", got)
	}
	if got := Percentile(s, 2); got != 100 {
		t.Fatalf("q>1 = %v, want 100", got)
	}
}
