// Package metrics implements the binary-classification and ranking metrics
// reported in the paper's tables and figures: accuracy, precision, recall,
// F1 (Figures 4, 6, 11; Table II), and ROC-AUC, average precision, and
// precision@k for the unsupervised-vs-zero-shot comparison (Table IV).
package metrics

import (
	"fmt"
	"sort"
)

// Confusion is a binary confusion matrix with the anomalous class (label 1)
// treated as positive.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies predictions against labels (both 0/1).
func NewConfusion(labels, preds []int) Confusion {
	if len(labels) != len(preds) {
		panic("metrics: labels/preds length mismatch")
	}
	var c Confusion
	for i, l := range labels {
		switch {
		case l == 1 && preds[i] == 1:
			c.TP++
		case l == 0 && preds[i] == 1:
			c.FP++
		case l == 0 && preds[i] == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	t := c.TP + c.FP + c.TN + c.FN
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision is TP/(TP+FP), 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN), 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the four scores on one line.
func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.4f prec=%.4f rec=%.4f f1=%.4f", c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// Accuracy is a convenience wrapper over NewConfusion(...).Accuracy().
func Accuracy(labels, preds []int) float64 { return NewConfusion(labels, preds).Accuracy() }

// ROCAUC computes the area under the ROC curve from anomaly scores (higher
// score = more anomalous) via the rank-statistic (Mann–Whitney) formulation,
// with midrank tie handling. Returns 0.5 when either class is empty.
func ROCAUC(labels []int, scores []float64) float64 {
	if len(labels) != len(scores) {
		panic("metrics: labels/scores length mismatch")
	}
	n := len(labels)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Midranks for ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var posRankSum float64
	nPos, nNeg := 0, 0
	for i, l := range labels {
		if l == 1 {
			nPos++
			posRankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := posRankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// AveragePrecision computes AP (area under the precision–recall curve using
// the step interpolation standard in anomaly-detection benchmarks).
func AveragePrecision(labels []int, scores []float64) float64 {
	if len(labels) != len(scores) {
		panic("metrics: labels/scores length mismatch")
	}
	idx := make([]int, len(labels))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	nPos := 0
	for _, l := range labels {
		nPos += l
	}
	if nPos == 0 {
		return 0
	}
	var ap float64
	tp := 0
	for rank, i := range idx {
		if labels[i] == 1 {
			tp++
			ap += float64(tp) / float64(rank+1)
		}
	}
	return ap / float64(nPos)
}

// PrecisionAtK returns the fraction of true anomalies among the k
// highest-scoring samples. When k <= 0 it defaults to the number of true
// anomalies (the convention used by Flow-Bench's prec@k).
func PrecisionAtK(labels []int, scores []float64, k int) float64 {
	if len(labels) != len(scores) {
		panic("metrics: labels/scores length mismatch")
	}
	if k <= 0 {
		for _, l := range labels {
			k += l
		}
	}
	if k == 0 {
		return 0
	}
	if k > len(labels) {
		k = len(labels)
	}
	idx := make([]int, len(labels))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	tp := 0
	for _, i := range idx[:k] {
		tp += labels[i]
	}
	return float64(tp) / float64(k)
}

// Scores bundles the four headline classification metrics, as plotted in
// Figure 6.
type Scores struct {
	Accuracy, Precision, Recall, F1 float64
}

// FromConfusion extracts Scores from a confusion matrix.
func FromConfusion(c Confusion) Scores {
	return Scores{c.Accuracy(), c.Precision(), c.Recall(), c.F1()}
}
