package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConfusionCounts(t *testing.T) {
	labels := []int{1, 1, 0, 0, 1, 0}
	preds := []int{1, 0, 0, 1, 1, 0}
	c := NewConfusion(labels, preds)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Accuracy()-4.0/6) > 1e-9 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-9 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-9 {
		t.Fatalf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-9 {
		t.Fatalf("f1 = %v", c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must score 0")
	}
	// All-negative predictions: precision 0 without dividing by zero.
	c = NewConfusion([]int{1, 0}, []int{0, 0})
	if c.Precision() != 0 || c.Recall() != 0 {
		t.Fatal("no-positive-prediction metrics wrong")
	}
}

func TestConfusionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConfusion([]int{1}, []int{1, 0})
}

func TestROCAUCPerfect(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if got := ROCAUC(labels, scores); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := []float64{0.9, 0.8, 0.2, 0.1}
	if got := ROCAUC(labels, inverted); math.Abs(got) > 1e-9 {
		t.Fatalf("inverted AUC = %v", got)
	}
}

func TestROCAUCRandomIsHalf(t *testing.T) {
	// Constant scores: all tied ⇒ AUC 0.5 by midrank handling.
	labels := []int{1, 0, 1, 0, 1}
	scores := []float64{3, 3, 3, 3, 3}
	if got := ROCAUC(labels, scores); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %v", got)
	}
}

func TestROCAUCSingleClass(t *testing.T) {
	if got := ROCAUC([]int{1, 1}, []float64{1, 2}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Ranking: pos, neg, pos  →  AP = (1/1 + 2/3)/2 = 5/6.
	labels := []int{1, 0, 1}
	scores := []float64{0.9, 0.8, 0.7}
	if got := AveragePrecision(labels, scores); math.Abs(got-5.0/6) > 1e-9 {
		t.Fatalf("AP = %v", got)
	}
	if got := AveragePrecision([]int{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("no-positives AP = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	labels := []int{1, 0, 1, 0}
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	if got := PrecisionAtK(labels, scores, 2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P@2 = %v", got)
	}
	// Default k = number of positives (2): top-2 contains 1 positive.
	if got := PrecisionAtK(labels, scores, 0); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P@npos = %v", got)
	}
	// k beyond n clamps.
	if got := PrecisionAtK(labels, scores, 100); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P@100 = %v", got)
	}
	if got := PrecisionAtK([]int{0}, []float64{1}, 0); got != 0 {
		t.Fatalf("P@k with no positives = %v", got)
	}
}

func TestFromConfusion(t *testing.T) {
	c := NewConfusion([]int{1, 0}, []int{1, 0})
	s := FromConfusion(c)
	if s.Accuracy != 1 || s.F1 != 1 {
		t.Fatalf("scores = %+v", s)
	}
}

// Property: AUC is invariant under any strictly monotone transform of the
// scores.
func TestROCAUCMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(50)
		labels := make([]int, n)
		scores := make([]float64, n)
		for i := range labels {
			labels[i] = rng.Intn(2)
			scores[i] = rng.Float64()
		}
		a := ROCAUC(labels, scores)
		warped := make([]float64, n)
		for i, s := range scores {
			warped[i] = math.Exp(3*s) + 7
		}
		b := ROCAUC(labels, warped)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC of scores equals 1 - AUC of negated scores (symmetry).
func TestROCAUCSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(50)
		labels := make([]int, n)
		scores := make([]float64, n)
		hasPos, hasNeg := false, false
		for i := range labels {
			labels[i] = rng.Intn(2)
			scores[i] = rng.Float64()
			if labels[i] == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		return math.Abs(ROCAUC(labels, scores)+ROCAUC(labels, neg)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: accuracy of perfect predictions is 1; of fully wrong is 0.
func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(100)
		labels := make([]int, n)
		flipped := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(2)
			flipped[i] = 1 - labels[i]
		}
		return Accuracy(labels, labels) == 1 && Accuracy(labels, flipped) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
