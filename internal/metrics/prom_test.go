package metrics

import (
	"strings"
	"testing"
)

func TestPromWriterBasic(t *testing.T) {
	var w PromWriter
	w.Gauge("repro_queue_len", "jobs queued", 3, "model", "default")
	w.Counter("repro_requests_total", "accepted requests", 120, "model", "default")
	w.Counter("repro_requests_total", "accepted requests", 7, "model", "alt")
	got := string(w.Bytes())

	want := strings.Join([]string{
		"# HELP repro_queue_len jobs queued",
		"# TYPE repro_queue_len gauge",
		`repro_queue_len{model="default"} 3`,
		"# HELP repro_requests_total accepted requests",
		"# TYPE repro_requests_total counter",
		`repro_requests_total{model="default"} 120`,
		`repro_requests_total{model="alt"} 7`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromWriterHeadersOncePerName(t *testing.T) {
	var w PromWriter
	w.Gauge("m", "h", 1, "a", "x")
	w.Gauge("m", "h", 2, "a", "y")
	if n := strings.Count(string(w.Bytes()), "# TYPE m gauge"); n != 1 {
		t.Fatalf("TYPE header emitted %d times, want 1", n)
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var w PromWriter
	w.Gauge("m", "h", 1, "path", `a\b"c`+"\n")
	got := string(w.Bytes())
	if !strings.Contains(got, `m{path="a\\b\"c\n"} 1`) {
		t.Fatalf("label not escaped: %q", got)
	}
}

func TestPromWriterValueFormat(t *testing.T) {
	var w PromWriter
	w.Gauge("a", "h", 1234567890)
	w.Gauge("b", "h", 0.25)
	got := string(w.Bytes())
	if !strings.Contains(got, "a 1234567890\n") {
		t.Fatalf("integer value mangled: %q", got)
	}
	if !strings.Contains(got, "b 0.25\n") {
		t.Fatalf("float value mangled: %q", got)
	}
}

func TestPromWriterNoLabels(t *testing.T) {
	var w PromWriter
	w.Counter("up_total", "h", 5)
	if !strings.Contains(string(w.Bytes()), "up_total 5\n") {
		t.Fatalf("unlabeled sample mangled: %q", string(w.Bytes()))
	}
}
