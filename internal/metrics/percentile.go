package metrics

import "sort"

// Percentile returns the q-quantile (q in [0,1]) of samples using linear
// interpolation between order statistics — the estimator used for the load
// lab's p50/p99 latency summaries. The input is not modified. An empty
// sample set yields 0; q is clamped to [0,1].
func Percentile(samples []float64, q float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, n)
	copy(s, samples)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return s[n-1]
	}
	frac := pos - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}
