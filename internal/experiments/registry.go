package experiments

import (
	"fmt"
	"sort"
)

// Def registers one regenerable paper artifact.
type Def struct {
	// ID is the command-line identifier ("table1", "fig4", ...).
	ID string
	// Paper names the artifact in the paper.
	Paper string
	// Run regenerates the artifact at the lab's scale.
	Run func(l *Lab) *Table
}

// All lists every experiment in the paper's presentation order.
func All() []Def {
	return []Def{
		{"table1", "Table I — dataset statistics", (*Lab).Table1},
		{"fig4", "Figure 4 — pretrain vs SFT accuracy", (*Lab).Figure4},
		{"fig5", "Figure 5 — training time vs parameters", (*Lab).Figure5},
		{"fig6", "Figure 6 — validation scores vs epochs", (*Lab).Figure6},
		{"fig7", "Figure 7 — online detection example", (*Lab).Figure7},
		{"fig8", "Figure 8 — early detection histogram", (*Lab).Figure8},
		{"fig9", "Figure 9 — debiasing augmentation", (*Lab).Figure9},
		{"fig10", "Figure 10 — SFT transfer matrix", (*Lab).Figure10},
		{"fig11", "Figure 11 — transfer fine-tuning curve", (*Lab).Figure11},
		{"table2", "Table II — parameter freezing", (*Lab).Table2},
		{"table3", "Table III — ICL with LoRA", (*Lab).Table3},
		{"fig12", "Figure 12 — examples in prompt", (*Lab).Figure12},
		{"table4", "Table IV — zero-shot vs unsupervised", (*Lab).Table4},
		{"fig13", "Figure 13 — chain-of-thought", (*Lab).Figure13},
		{"fig14", "Figure 14 — ICL transfer matrix", (*Lab).Figure14},
		{"abl-pretrain", "Ablation — SFT accuracy vs pre-training budget", (*Lab).AblationPretrain},
		{"abl-lora-rank", "Ablation — LoRA rank sweep", (*Lab).AblationLoRARank},
		{"abl-quant", "Ablation — 4-bit quantization vs fp32", (*Lab).AblationQuantization},
		{"abl-debias", "Ablation — debias augmentation cost", (*Lab).AblationDebias},
		{"ext-types", "Extension — anomaly-type classification", (*Lab).ExtensionAnomalyTypes},
	}
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	defs := All()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.ID
	}
	sort.Strings(out)
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Def, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}
