// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment is a method on Lab returning a Table
// (printable rows); cmd/expbench and the repository's benchmarks drive them.
//
// Absolute numbers differ from the paper (scaled-down models on synthetic
// Flow-Bench; see DESIGN.md), but each experiment preserves the paper's
// comparison structure: who is compared, over what workload, and which
// direction the result should point. EXPERIMENTS.md records paper-reported
// vs measured values.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// Scale sets the working sizes of all experiments. Quick is used by tests
// and benchmarks; Standard by cmd/expbench.
type Scale struct {
	// Train, Val, Test are per-workflow stratified subsample sizes.
	Train, Val, Test int
	// PretrainSteps is the MLM/CLM budget per checkpoint.
	PretrainSteps int
	// Epochs is the default SFT budget.
	Epochs int
	// ICLFTSteps is the LoRA fine-tuning budget.
	ICLFTSteps int
	// ICLEval caps the number of queries per ICL evaluation (prompted
	// forward passes are the slowest operation).
	ICLEval int
	// Runs is the number of independent runs for the bias probe (Fig 9).
	Runs int
	// Fig6Epochs is the long-training budget of Figure 6.
	Fig6Epochs int
	// Fig12Shots lists the prompt example counts swept in Figure 12.
	Fig12Shots []int
	// Seed anchors all derived randomness.
	Seed uint64
}

// Tiny is the smallest runnable scale — seconds per experiment — for smoke
// tests and CI, where the goal is exercising every code path rather than
// reproducing the paper's numbers.
func Tiny() Scale {
	return Scale{
		Train: 120, Val: 40, Test: 60,
		PretrainSteps: 40, Epochs: 1, ICLFTSteps: 30, ICLEval: 20,
		Runs: 1, Fig6Epochs: 2, Fig12Shots: []int{0, 2}, Seed: 5,
	}
}

// Quick is a small scale for tests and benchmarks (tens of seconds per
// experiment).
func Quick() Scale {
	return Scale{
		Train: 300, Val: 100, Test: 150,
		PretrainSteps: 120, Epochs: 2, ICLFTSteps: 100, ICLEval: 40,
		Runs: 2, Fig6Epochs: 8, Fig12Shots: []int{0, 2, 4}, Seed: 42,
	}
}

// Standard is the scale used by cmd/expbench for the recorded results.
func Standard() Scale {
	return Scale{
		Train: 1500, Val: 300, Test: 500,
		PretrainSteps: 600, Epochs: 3, ICLFTSteps: 400, ICLEval: 200,
		Runs: 10, Fig6Epochs: 50, Fig12Shots: []int{0, 2, 4, 6, 8}, Seed: 42,
	}
}

// Lab caches the expensive shared state of the experiment suite: the
// subsampled datasets, the shared tokenizer, and one pre-trained checkpoint
// per model name (cloned out to every experiment).
type Lab struct {
	Scale Scale

	mu         sync.Mutex
	datasets   map[flowbench.Workflow]*flowbench.Dataset
	corpus     []string
	tok        *tokenizer.Tokenizer
	pretrained map[string]*transformer.Model
}

// NewLab builds a lab at the given scale.
func NewLab(scale Scale) *Lab {
	return &Lab{
		Scale:      scale,
		datasets:   make(map[flowbench.Workflow]*flowbench.Dataset),
		pretrained: make(map[string]*transformer.Model),
	}
}

// Dataset returns the subsampled dataset for a workflow, generating it on
// first use.
func (l *Lab) Dataset(wf flowbench.Workflow) *flowbench.Dataset {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.datasetLocked(wf)
}

func (l *Lab) datasetLocked(wf flowbench.Workflow) *flowbench.Dataset {
	if ds, ok := l.datasets[wf]; ok {
		return ds
	}
	full := flowbench.Generate(wf, l.Scale.Seed)
	ds := full.Subsample(l.Scale.Train, l.Scale.Val, l.Scale.Test, l.Scale.Seed+7)
	l.datasets[wf] = ds
	return ds
}

// Tokenizer returns the shared vocabulary, built once over the pre-training
// corpus plus the training sentences of all three workflows (so transfer
// experiments share token space).
func (l *Lab) Tokenizer() *tokenizer.Tokenizer {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ensureTokenizerLocked()
	return l.tok
}

func (l *Lab) ensureTokenizerLocked() {
	if l.tok != nil {
		return
	}
	// ICL documents are weighted heavily so decoders learn the prompt
	// format and in-context rule induction, not just sentence statistics.
	corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{
		SentencesPerWorkflow: 300, ICLDocs: 500, ExamplesPerDoc: 5, Seed: l.Scale.Seed ^ 0xbeef,
	})
	for _, wf := range flowbench.Workflows {
		ds := l.datasetLocked(wf)
		corpus = append(corpus, logparse.Corpus(ds.Train)...)
	}
	l.corpus = corpus
	l.tok = tokenizer.Build(corpus)
}

// Corpus returns the pre-training corpus (building it if needed).
func (l *Lab) Corpus() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ensureTokenizerLocked()
	return l.corpus
}

// Pretrained returns a fresh clone of the named model's pre-trained
// checkpoint, pre-training it on first use (MLM for encoders, CLM for
// decoders).
func (l *Lab) Pretrained(name string) *transformer.Model {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.pretrained[name]; ok {
		return m.Clone()
	}
	l.ensureTokenizerLocked()
	spec := models.MustGet(name)
	m := spec.Build(l.tok.VocabSize())
	opts := pretrain.Options{Steps: l.Scale.PretrainSteps, LR: 3e-3, Seed: l.Scale.Seed ^ spec.Seed}
	if spec.Kind == models.Decoder {
		// Decoders need prompt-format fluency before in-context behaviour
		// emerges; give them a larger causal-LM budget than the encoders'
		// MLM budget.
		opts.Steps *= 4
		pretrain.CLM(m, l.tok, l.corpus, opts)
	} else {
		pretrain.MLM(m, l.tok, l.corpus, opts)
	}
	l.pretrained[name] = m
	return m.Clone()
}

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier ("table1", "fig4", ...).
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, one string per column.
	Rows [][]string
	// Notes carries free-form output (e.g. the Figure 13 CoT text) and
	// caveats.
	Notes []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
