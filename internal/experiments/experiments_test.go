package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/flowbench"
)

// tiny returns a scale small enough for unit tests.
// tiny is the exported Tiny scale — the same recipe cmd/expbench -scale tiny
// runs, so these tests exercise exactly what CI smoke runs exercise.
func tiny() Scale { return Tiny() }

func TestRegistryCoversAllArtifacts(t *testing.T) {
	defs := All()
	if len(defs) != 20 {
		t.Fatalf("registry has %d experiments, want 20 (4 tables + 11 figures + 4 ablations + 1 extension)", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if seen[d.ID] {
			t.Fatalf("duplicate experiment id %q", d.ID)
		}
		seen[d.ID] = true
		if d.Run == nil {
			t.Fatalf("experiment %q has no runner", d.ID)
		}
	}
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig4", "fig13"} {
		if !seen[id] {
			t.Fatalf("registry missing %q", id)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig4"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestLabDatasetCaching(t *testing.T) {
	l := NewLab(tiny())
	a := l.Dataset(flowbench.Genome)
	b := l.Dataset(flowbench.Genome)
	if a != b {
		t.Fatal("dataset not cached")
	}
	if len(a.Train) != 120 {
		t.Fatalf("train size %d", len(a.Train))
	}
}

func TestLabPretrainedCloning(t *testing.T) {
	l := NewLab(tiny())
	a := l.Pretrained("distilbert-base-uncased")
	b := l.Pretrained("distilbert-base-uncased")
	if a == b {
		t.Fatal("Pretrained must return clones, not the cached model")
	}
	// Clones carry identical weights.
	if !a.ForwardCls([]int{1, 2, 3}, false).Equal(b.ForwardCls([]int{1, 2, 3}, false)) {
		t.Fatal("clones differ")
	}
	// Mutating one clone must not leak into subsequent clones.
	a.ClsHead.Weight.W.Data[0] += 10
	c := l.Pretrained("distilbert-base-uncased")
	if a.ForwardCls([]int{1, 2, 3}, false).Equal(c.ForwardCls([]int{1, 2, 3}, false)) {
		t.Fatal("mutation leaked into cache")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.Add("v1", 0.5)
	tab.Add(123, "long-value")
	tab.Notes = append(tab.Notes, "a note")
	s := tab.String()
	if !strings.Contains(s, "== x: demo ==") {
		t.Fatalf("missing title: %s", s)
	}
	if !strings.Contains(s, "0.5000") {
		t.Fatalf("float not formatted: %s", s)
	}
	if !strings.Contains(s, "note: a note") {
		t.Fatalf("missing note: %s", s)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	l := NewLab(tiny())
	tab := l.Table1()
	if len(tab.Rows) != 9 {
		t.Fatalf("table1 has %d rows, want 9", len(tab.Rows))
	}
	// Spot-check the first row against the paper's numbers.
	r := tab.Rows[0]
	if r[0] != "1000-genome" || r[1] != "train" || r[2] != "25911" || r[3] != "12558" {
		t.Fatalf("table1 row = %v", r)
	}
}

// TestFigure4ShapeAndDirection runs the flagship experiment at tiny scale on
// a subset of models and verifies the SFT > pretrain claim holds per row.
func TestFigure4ShapeAndDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	l := NewLab(tiny())
	tab := l.Figure4()
	if len(tab.Rows) != 14 { // 12 encoders + MLP + GNN
		t.Fatalf("fig4 rows = %d", len(tab.Rows))
	}
	improved := 0
	for _, row := range tab.Rows[:12] {
		pre, err1 := strconv.ParseFloat(row[1], 64)
		post, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if post > pre {
			improved++
		}
	}
	// At tiny scale a couple of models may tie; the bulk must improve.
	if improved < 8 {
		t.Fatalf("SFT improved only %d/12 encoders", improved)
	}
}

func TestFigure7Timeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	l := NewLab(tiny())
	tab := l.Figure7()
	if len(tab.Rows) != flowbench.NumFeatures {
		t.Fatalf("fig7 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "T1" || !strings.HasPrefix(tab.Rows[0][1], "wms_delay is ") {
		t.Fatalf("fig7 first row = %v", tab.Rows[0])
	}
}

func TestTable4ContainsOOMRow(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	l := NewLab(tiny())
	tab := l.Table4()
	found := false
	for _, row := range tab.Rows {
		if row[0] == "AnomalyDAE" {
			found = true
			if row[1] != "OOM" {
				t.Fatalf("AnomalyDAE row = %v, want OOM", row)
			}
		}
	}
	if !found {
		t.Fatal("table4 missing AnomalyDAE row")
	}
	// 5 unsupervised + 3 decoders × 2 = 11 rows.
	if len(tab.Rows) != 11 {
		t.Fatalf("table4 rows = %d, want 11", len(tab.Rows))
	}
}

func TestFigure13ProducesReasoning(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	l := NewLab(tiny())
	tab := l.Figure13()
	if len(tab.Notes) < 2 {
		t.Fatal("fig13 missing prompt/output notes")
	}
	if !strings.Contains(tab.Notes[1], "step-by-step reasoning") {
		t.Fatalf("fig13 output note = %q", tab.Notes[1][:60])
	}
}
