package experiments

import (
	"fmt"

	"repro/internal/models"

	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/sft"
)

// Ablations beyond the paper's artifacts: each isolates one design choice
// the paper adopts without sweeping (pre-training budget, LoRA rank,
// quantization, debiasing) and measures its effect at repository scale.

// AblationPretrain measures SFT test accuracy as a function of the MLM
// pre-training budget — the "reduced training time and resources" claim of
// Section III-A made quantitative. Steps=0 is training from scratch, the
// regime the paper argues against.
func (l *Lab) AblationPretrain() *Table {
	t := &Table{
		ID:     "abl-pretrain",
		Title:  "Ablation: SFT accuracy vs MLM pre-training budget",
		Header: []string{"pretrain_steps", "sft_acc"},
	}
	ds := l.Dataset(flowbench.Genome)
	train := sft.JobExamples(ds.Train)
	for _, steps := range []int{0, l.Scale.PretrainSteps / 4, l.Scale.PretrainSteps, l.Scale.PretrainSteps * 3} {
		// Build a fresh checkpoint at this budget (bypassing the lab cache,
		// which is pinned to Scale.PretrainSteps).
		sub := NewLab(l.Scale)
		sub.Scale.PretrainSteps = steps
		if steps == 0 {
			sub.Scale.PretrainSteps = 1 // 1 step ≈ scratch; 0 would panic
		}
		c := sft.NewClassifier(sub.Pretrained("bert-base-uncased"), sub.Tokenizer())
		cfg := l.sftConfig()
		sft.Train(c, train, nil, cfg)
		t.Add(steps, sft.EvaluateJobsParallel(c, ds.Test).Accuracy())
	}
	return t
}

// AblationLoRARank sweeps the LoRA rank, reporting the trainable-parameter
// share and few-shot accuracy after fine-tuning — the knob the paper fixes
// at 64 without justification.
func (l *Lab) AblationLoRARank() *Table {
	t := &Table{
		ID:     "abl-lora-rank",
		Title:  "Ablation: LoRA rank vs trainable share and accuracy",
		Header: []string{"rank", "trainable_params", "trainable_pct", "fewshot_mixed_acc"},
	}
	ds := l.Dataset(flowbench.Genome)
	test := l.iclTest(flowbench.Genome)
	exs := icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, l.Scale.Seed))
	for _, rank := range []int{1, 2, 4, 8, 16} {
		d := l.newDetector("gpt2")
		cfg := l.iclFTConfig()
		cfg.Rank = rank
		cfg.Alpha = float64(2 * rank)
		cfg.Quantize = false
		res := icl.FineTune(d, ds.Train, cfg)
		acc := icl.EvaluateCached(d, test, exs).Accuracy()
		t.Add(rank, res.TrainableParams,
			fmt.Sprintf("%.2f%%", 100*res.TrainableFraction()), acc)
	}
	return t
}

// AblationQuantization compares LoRA fine-tuning over full-precision vs
// 4-bit quantized base weights: the accuracy cost of the 8× memory saving
// the paper takes from BitsAndBytes.
func (l *Lab) AblationQuantization() *Table {
	t := &Table{
		ID:     "abl-quant",
		Title:  "Ablation: 4-bit base quantization vs full precision",
		Header: []string{"model", "base_precision", "base_bytes", "fewshot_mixed_acc"},
	}
	ds := l.Dataset(flowbench.Genome)
	test := l.iclTest(flowbench.Genome)
	exs := icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, l.Scale.Seed))
	for _, name := range []string{"gpt2", "mistral"} {
		// Footprints of the model's linear layers in both precisions,
		// measured on a throwaway clone.
		quantBytes, fp32Bytes := l.Pretrained(name).Quantize4Bit()
		for _, quant := range []bool{false, true} {
			d := l.newDetector(name)
			cfg := l.iclFTConfig()
			cfg.Quantize = quant
			icl.FineTune(d, ds.Train, cfg)
			acc := icl.EvaluateCached(d, test, exs).Accuracy()
			precision, bytes := "fp32", fp32Bytes
			if quant {
				precision, bytes = "4-bit", quantBytes
			}
			t.Add(name, precision, bytes, acc)
		}
	}
	return t
}

// ExtensionAnomalyTypes runs the repository's extension task: 3-way
// classification of normal vs CPU-capped vs HDD-throttled jobs, reporting
// overall accuracy and per-class recall. The paper stops at binary
// detection; Flow-Bench's templates carry the type labels that make this
// possible.
func (l *Lab) ExtensionAnomalyTypes() *Table {
	t := &Table{
		ID:     "ext-types",
		Title:  "Extension: anomaly-type classification (normal/cpu/hdd)",
		Header: []string{"model", "accuracy", "recall_normal", "recall_cpu", "recall_hdd"},
	}
	ds := l.Dataset(flowbench.Genome)
	train := sft.TypedExamples(ds.Train)
	test := sft.TypedExamples(ds.Test)
	for _, name := range []string{"distilbert-base-uncased", "bert-base-uncased"} {
		// Type heads need a 3-class model: build fresh (the lab cache holds
		// binary-head checkpoints) and fine-tune directly.
		spec := models.MustGet(name)
		m := spec.BuildClasses(l.Tokenizer().VocabSize(), sft.NumTypeClasses)
		c := sft.NewMultiClassifier(m, l.Tokenizer(), sft.NumTypeClasses)
		cfg := l.sftConfig()
		cfg.Epochs = maxInt(2, l.Scale.Epochs)
		sft.TrainMulti(c, train, cfg)
		mc := sft.EvaluateMulti(c, test)
		t.Add(name, mc.Accuracy(),
			mc.Recall(sft.ClassNormal), mc.Recall(sft.ClassCPU), mc.Recall(sft.ClassHDD))
	}
	return t
}

// AblationDebias measures what the Figure 9 debiasing augmentation costs (or
// buys) in test accuracy, alongside the bias gap it removes.
func (l *Lab) AblationDebias() *Table {
	t := &Table{
		ID:     "abl-debias",
		Title:  "Ablation: debias augmentation vs accuracy and bias gap",
		Header: []string{"augmentation", "test_acc", "empty_input_gap"},
	}
	ds := l.Dataset(flowbench.Genome)
	train := sft.JobExamples(ds.Train)
	for _, aug := range []bool{false, true} {
		c := l.newClassifier("bert-base-uncased")
		cfg := l.sftConfig()
		if aug {
			cfg.Augment = sft.DebiasAugmentation(40)
		}
		sft.Train(c, train, nil, cfg)
		probe := sft.BiasProbe(c)
		gap := float64(probe[0] - probe[1])
		if gap < 0 {
			gap = -gap
		}
		name := "none"
		if aug {
			name = "empty-sentence (40)"
		}
		t.Add(name, sft.EvaluateJobsParallel(c, ds.Test).Accuracy(), gap)
	}
	return t
}
