package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// ablationIDs pins the registry's ablation/extension grid: the experiments
// beyond the paper's artifacts, in registry order. Adding or removing one is
// a conscious, test-visible act.
var ablationIDs = []string{"abl-pretrain", "abl-lora-rank", "abl-quant", "abl-debias", "ext-types"}

func TestAblationRegistryGridPinned(t *testing.T) {
	var got []string
	for _, d := range All() {
		if strings.HasPrefix(d.ID, "abl-") || strings.HasPrefix(d.ID, "ext-") {
			got = append(got, d.ID)
		}
	}
	if len(got) != len(ablationIDs) {
		t.Fatalf("registry has ablations %v, want %v", got, ablationIDs)
	}
	for i, id := range ablationIDs {
		if got[i] != id {
			t.Fatalf("registry ablation order %v, want %v", got, ablationIDs)
		}
	}
	for _, id := range ablationIDs {
		d, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", id, err)
		}
		if d.Run == nil {
			t.Errorf("%s has no Run function", id)
		}
		if !strings.Contains(d.Paper, "Ablation") && !strings.Contains(d.Paper, "Extension") {
			t.Errorf("%s is labeled %q, expected an ablation/extension caption", id, d.Paper)
		}
	}
}

// TestAblationDebiasTiny runs the cheapest full ablation end to end at tiny
// scale: two SFT trainings plus bias probes, a few seconds. It pins the
// table's shape and value ranges.
func TestAblationDebiasTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation training run skipped in -short")
	}
	l := NewLab(tiny())
	tab := l.AblationDebias()
	if tab.ID != "abl-debias" {
		t.Fatalf("table ID %q", tab.ID)
	}
	wantHeader := []string{"augmentation", "test_acc", "empty_input_gap"}
	if len(tab.Header) != len(wantHeader) {
		t.Fatalf("header %v, want %v", tab.Header, wantHeader)
	}
	for i, h := range wantHeader {
		if tab.Header[i] != h {
			t.Fatalf("header %v, want %v", tab.Header, wantHeader)
		}
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (none / empty-sentence)", len(tab.Rows))
	}
	if tab.Rows[0][0] != "none" || tab.Rows[1][0] != "empty-sentence (40)" {
		t.Errorf("augmentation names wrong: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		acc, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("test_acc cell %q not numeric: %v", row[1], err)
		}
		if acc < 0 || acc > 1 {
			t.Errorf("test_acc %v out of [0,1]", acc)
		}
		gap, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("empty_input_gap cell %q not numeric: %v", row[2], err)
		}
		if gap < 0 {
			t.Errorf("bias gap %v negative (should be absolute)", gap)
		}
	}
}

// TestExtensionAnomalyTypesTiny exercises the 3-way classification extension
// — the only multi-class path in the suite — at tiny scale.
func TestExtensionAnomalyTypesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("extension training run skipped in -short")
	}
	sc := tiny()
	l := NewLab(sc)
	tab := l.ExtensionAnomalyTypes()
	if tab.ID != "ext-types" {
		t.Fatalf("table ID %q", tab.ID)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (distilbert / bert)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for col := 1; col < len(row); col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("cell %q not numeric: %v", row[col], err)
			}
			if v < 0 || v > 1 {
				t.Errorf("%s cell %d = %v out of [0,1]", row[0], col, v)
			}
		}
	}
}
