package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/flowbench"
	"repro/internal/sft"
)

// Table1 regenerates Table I: dataset statistics per workflow and split at
// full Flow-Bench scale (independent of the lab's subsampling).
func (l *Lab) Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Dataset statistics (Table I)",
		Header: []string{"dataset", "split", "#normal", "#anomalous", "%anomalies"},
	}
	for _, wf := range flowbench.Workflows {
		ds := flowbench.Generate(wf, l.Scale.Seed)
		for _, st := range ds.Stats() {
			t.Add(string(wf), st.Split, st.Normal, st.Anomalous, st.Fraction())
		}
	}
	t.Notes = append(t.Notes, "counts match the paper's Table I exactly by construction; see internal/flowbench")
	return t
}

// newClassifier builds a fine-tunable classifier from a pre-trained
// checkpoint clone.
func (l *Lab) newClassifier(model string) *sft.Classifier {
	return sft.NewClassifier(l.Pretrained(model), l.Tokenizer())
}

// sftConfig is the default fine-tuning recipe at lab scale.
func (l *Lab) sftConfig() sft.TrainConfig {
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = l.Scale.Epochs
	cfg.Seed = l.Scale.Seed
	return cfg
}

// Figure4 regenerates Figure 4: test accuracy of every encoder before
// (pre-trained backbone, untrained head) and after SFT on 1000 Genome, with
// the MLP and GNN baselines.
func (l *Lab) Figure4() *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Pre-trained vs SFT accuracy on 1000 Genome (Figure 4)",
		Header: []string{"model", "pretrain_acc", "sft_acc"},
	}
	ds := l.Dataset(flowbench.Genome)
	train := sft.JobExamples(ds.Train)
	for _, spec := range modelsEncoderOrder() {
		c := l.newClassifier(spec)
		pre := sft.EvaluateJobsParallel(c, ds.Test).Accuracy()
		sft.Train(c, train, nil, l.sftConfig())
		post := sft.EvaluateJobsParallel(c, ds.Test).Accuracy()
		t.Add(spec, pre, post)
	}
	mlp := baselines.TrainMLP(ds.Train, baselines.DefaultMLPConfig())
	t.Add("MLP (baseline)", "-", mlp.Evaluate(ds.Test).Accuracy())
	gcn := baselines.TrainGCN(ds.DAG, ds.Train, baselines.DefaultGCNConfig())
	t.Add("GNN (baseline)", "-", gcn.Evaluate(ds.DAG, ds.Test).Accuracy())
	return t
}

// Figure5 regenerates Figure 5: SFT wall-clock training time versus
// parameter count for every encoder on 1000 Genome.
func (l *Lab) Figure5() *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Training time vs number of parameters (Figure 5)",
		Header: []string{"model", "params", "train_time_sec", "sft_acc"},
	}
	ds := l.Dataset(flowbench.Genome)
	train := sft.JobExamples(ds.Train)
	for _, spec := range modelsEncoderOrder() {
		c := l.newClassifier(spec)
		start := time.Now()
		sft.Train(c, train, nil, l.sftConfig())
		elapsed := time.Since(start)
		acc := sft.EvaluateJobsParallel(c, ds.Test).Accuracy()
		t.Add(spec, c.Model.ParamCount(), fmt.Sprintf("%.2f", elapsed.Seconds()), acc)
	}
	return t
}

// Figure6 regenerates Figure 6: validation accuracy/precision/recall/F1
// across a long fine-tuning run on 1000 Genome.
func (l *Lab) Figure6() *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Validation scores vs SFT epoch (Figure 6)",
		Header: []string{"epoch", "accuracy", "precision", "recall", "f1"},
	}
	ds := l.Dataset(flowbench.Genome)
	c := l.newClassifier("bert-base-uncased")
	cfg := l.sftConfig()
	cfg.Epochs = l.Scale.Fig6Epochs
	cfg.ValEvery = 1
	// A small training subset makes the overfitting regime reachable.
	trainN := min(len(ds.Train), 200)
	stats := sft.Train(c, sft.JobExamples(ds.Train[:trainN]), sft.JobExamples(ds.Val), cfg)
	for _, st := range stats {
		t.Add(st.Epoch, st.Val.Accuracy, st.Val.Precision, st.Val.Recall, st.Val.F1)
	}
	return t
}

// Figure7 regenerates Figure 7: an online-detection timeline over one
// anomalous test job, prefix by prefix.
func (l *Lab) Figure7() *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Online detection example (Figure 7)",
		Header: []string{"step", "sentence", "label", "score"},
	}
	ds := l.Dataset(flowbench.Genome)
	c := l.trainedGenomeClassifier()
	// Pick an anomalous job whose full sentence the model classifies
	// correctly, so the timeline shows the flip to LABEL_1.
	job := ds.Test[0]
	for _, j := range ds.Test {
		if j.Label == 1 {
			if pred, _ := c.PredictJob(j); pred == 1 {
				job = j
				break
			}
		}
	}
	for _, step := range sft.OnlineTrace(c, job) {
		t.Add(fmt.Sprintf("T%d", step.K), step.Sentence, fmt.Sprintf("LABEL_%d", step.Label), step.Score)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("true label: LABEL_%d (%s)", job.Label, job.Anomaly))
	return t
}

// Figure8 regenerates Figure 8: the early-detection histogram — how many
// test jobs are first classified correctly at each feature prefix.
func (l *Lab) Figure8() *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Early detection histogram (Figure 8)",
		Header: []string{"feature", "#samples_first_correct"},
	}
	ds := l.Dataset(flowbench.Genome)
	c := l.trainedGenomeClassifier()
	hist, missed := sft.EarlyDetectionParallel(c, ds.Test)
	for i, name := range flowbench.FeatureNames {
		t.Add(name, hist[i])
	}
	t.Notes = append(t.Notes, fmt.Sprintf("never correct at any prefix: %d", missed))
	return t
}

// trainedGenomeClassifier returns a bert-base-uncased classifier fine-tuned
// on the genome training split (shared by Figures 7 and 8).
func (l *Lab) trainedGenomeClassifier() *sft.Classifier {
	ds := l.Dataset(flowbench.Genome)
	c := l.newClassifier("bert-base-uncased")
	sft.Train(c, sft.JobExamples(ds.Train), nil, l.sftConfig())
	return c
}

// Figure9 regenerates Figure 9: the empty-input prediction probe across
// encoders, averaged over independent fine-tuning runs, with and without
// the label-balanced empty-sentence augmentation.
func (l *Lab) Figure9() *Table {
	t := &Table{
		ID:    "fig9",
		Title: "Empty-string bias before/after debias augmentation (Figure 9)",
		Header: []string{
			"model", "p_normal_plain", "p_abnormal_plain", "gap_plain", "gap_augmented",
		},
	}
	ds := l.Dataset(flowbench.Genome)
	trainN := min(len(ds.Train), 150)
	examples := sft.JobExamples(ds.Train[:trainN])
	for _, spec := range modelsEncoderOrder() {
		var pN, pA, gapPlain, gapAug float64
		for run := 0; run < l.Scale.Runs; run++ {
			cfg := l.sftConfig()
			cfg.Epochs = maxInt(2, l.Scale.Epochs)
			cfg.Seed = l.Scale.Seed + uint64(run)*31

			c := l.newClassifier(spec)
			sft.Train(c, examples, nil, cfg)
			probe := sft.BiasProbe(c)
			pN += float64(probe[0])
			pA += float64(probe[1])
			gapPlain += absf(float64(probe[0] - probe[1]))

			c2 := l.newClassifier(spec)
			cfg.Augment = sft.DebiasAugmentation(80)
			sft.Train(c2, examples, nil, cfg)
			probe2 := sft.BiasProbe(c2)
			gapAug += absf(float64(probe2[0] - probe2[1]))
		}
		runs := float64(l.Scale.Runs)
		t.Add(spec, pN/runs, pA/runs, gapPlain/runs, gapAug/runs)
	}
	return t
}

// Figure10 regenerates Figure 10: the 3×3 SFT transfer matrix — train
// bert-base-uncased on one workflow, evaluate on every workflow's test set.
func (l *Lab) Figure10() *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "SFT transfer matrix, bert-base-uncased (Figure 10)",
		Header: []string{"train\\eval", "1000-genome", "montage", "predict-future-sales"},
	}
	for _, trainWF := range flowbench.Workflows {
		c := l.newClassifier("bert-base-uncased")
		sft.Train(c, sft.JobExamples(l.Dataset(trainWF).Train), nil, l.sftConfig())
		row := []interface{}{string(trainWF)}
		for _, evalWF := range flowbench.Workflows {
			row = append(row, sft.EvaluateJobsParallel(c, l.Dataset(evalWF).Test).Accuracy())
		}
		t.Add(row...)
	}
	return t
}

// Figure11 regenerates Figure 11: accuracy on Montage of a genome-trained
// model after fine-tuning on increasing fractions of Montage training data.
func (l *Lab) Figure11() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Transfer fine-tuning on target-domain data (Figure 11)",
		Header: []string{"pct_target_train_data", "montage_test_accuracy"},
	}
	base := l.newClassifier("bert-base-uncased")
	genome := l.Dataset(flowbench.Genome)
	montage := l.Dataset(flowbench.Montage)
	sft.Train(base, sft.JobExamples(genome.Train), nil, l.sftConfig())
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		c := sft.NewClassifier(base.Model.Clone(), base.Tok)
		n := len(montage.Train) * pct / 100
		if n > 0 {
			cfg := l.sftConfig()
			cfg.Epochs = maxInt(1, l.Scale.Epochs-1)
			sft.Train(c, sft.JobExamples(montage.Train[:n]), nil, cfg)
		}
		t.Add(pct, sft.EvaluateJobsParallel(c, montage.Test).Accuracy())
	}
	return t
}

// Table2 regenerates Table II: catastrophic forgetting under sequential
// fine-tuning (D1 = 1000 Genome, D2 = Montage) and its mitigation by
// freezing everything but the final linear head.
func (l *Lab) Table2() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Freezing parameters vs catastrophic forgetting (Table II)",
		Header: []string{"strategy", "params_updated", "genome_acc", "genome_prec", "train_time_sec"},
	}
	d1 := l.Dataset(flowbench.Genome)
	d2 := l.Dataset(flowbench.Montage)
	d1train := sft.JobExamples(d1.Train)
	d2train := sft.JobExamples(d2.Train)

	evalD1 := func(c *sft.Classifier) (float64, float64) {
		conf := sft.EvaluateJobsParallel(c, d1.Test)
		return conf.Accuracy(), conf.Precision()
	}

	// SFT(D1), all parameters.
	c1 := l.newClassifier("bert-base-uncased")
	start := time.Now()
	sft.Train(c1, d1train, nil, l.sftConfig())
	t1 := time.Since(start)
	acc1, prec1 := evalD1(c1)
	t.Add("SFT (D1)", "All", acc1, prec1, fmt.Sprintf("%.2f", t1.Seconds()))

	// SFT(D1+D2), all parameters: continue training on D2, then re-evaluate
	// on D1 — catastrophic forgetting shows as an accuracy drop.
	c2 := sft.NewClassifier(c1.Model.Clone(), c1.Tok)
	start = time.Now()
	sft.Train(c2, d2train, nil, l.sftConfig())
	t2 := time.Since(start)
	acc2, prec2 := evalD1(c2)
	t.Add("SFT (D1+D2)", "All", acc2, prec2, fmt.Sprintf("%.2f", (t1+t2).Seconds()))

	// SFT(D1+D2), linear head only: the backbone is frozen and features are
	// cached, so head epochs are nearly free — the linear strategy gets a
	// much larger epoch budget and still finishes far faster.
	c3 := l.newClassifier("bert-base-uncased")
	linCfg := l.sftConfig()
	linCfg.Epochs = l.Scale.Epochs * 10
	start = time.Now()
	sft.TrainHeadOnly(c3, d1train, linCfg)
	sft.TrainHeadOnly(c3, d2train, linCfg)
	t3 := time.Since(start)
	acc3, prec3 := evalD1(c3)
	t.Add("SFT (D1+D2)", "Linear", acc3, prec3, fmt.Sprintf("%.2f", t3.Seconds()))
	return t
}

// modelsEncoderOrder returns the encoder names in Figure 4's order.
func modelsEncoderOrder() []string {
	return []string{
		"albert-base-v2", "albert-large-v2",
		"bert-base-cased", "bert-base-uncased",
		"bert-large-cased", "bert-large-uncased",
		"distilbert-base-cased", "distilbert-base-uncased",
		"roberta-base", "roberta-large",
		"xlnet-base-cased", "xlnet-large-cased",
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
