package experiments

import (
	"errors"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/metrics"
)

// newDetector builds an ICL detector from a pre-trained decoder checkpoint
// clone.
func (l *Lab) newDetector(model string) *icl.Detector {
	return icl.NewDetector(l.Pretrained(model), l.Tokenizer())
}

// iclTest returns the capped query set for ICL evaluation.
func (l *Lab) iclTest(wf flowbench.Workflow) []flowbench.Job {
	test := l.Dataset(wf).Test
	if len(test) > l.Scale.ICLEval {
		test = test[:l.Scale.ICLEval]
	}
	return test
}

// iclFTConfig is the LoRA fine-tuning recipe at lab scale.
func (l *Lab) iclFTConfig() icl.FineTuneConfig {
	cfg := icl.DefaultFineTuneConfig()
	cfg.Steps = l.Scale.ICLFTSteps
	cfg.Seed = l.Scale.Seed
	return cfg
}

// decoderOrder lists the Table III models.
func decoderOrder() []string { return []string{"gpt2", "mistral", "llama2"} }

// Table3 regenerates Table III: few-shot ICL accuracy on 1000 Genome for
// each decoder, with and without quantized LoRA fine-tuning, across the
// three example mixes, plus the LoRA parameter-efficiency columns.
func (l *Lab) Table3() *Table {
	t := &Table{
		ID:    "table3",
		Title: "ICL accuracy with LoRA fine-tuning (Table III)",
		Header: []string{
			"model", "all_params", "lora_params", "lora_pct", "ft",
			"fewshot_neg_only", "fewshot_pos_only", "fewshot_mixed",
		},
	}
	ds := l.Dataset(flowbench.Genome)
	test := l.iclTest(flowbench.Genome)
	const shots = 5
	evalMixes := func(d *icl.Detector) [3]float64 {
		var out [3]float64
		for i, mix := range []icl.ExampleMix{icl.NegativeOnly, icl.PositiveOnly, icl.Mixed} {
			exs := icl.PromptExamples(icl.SelectExamples(ds.Train, shots, mix, l.Scale.Seed+uint64(i)))
			out[i] = icl.EvaluateCached(d, test, exs).Accuracy()
		}
		return out
	}
	for _, name := range decoderOrder() {
		base := l.newDetector(name)
		accPre := evalMixes(base)

		ft := l.newDetector(name)
		res := icl.FineTune(ft, ds.Train, l.iclFTConfig())
		accFT := evalMixes(ft)

		total := res.TotalParams
		t.Add(name, total, res.TrainableParams,
			fmt.Sprintf("%.2f%%", 100*res.TrainableFraction()), "no",
			accPre[0], accPre[1], accPre[2])
		t.Add(name, total, res.TrainableParams,
			fmt.Sprintf("%.2f%%", 100*res.TrainableFraction()), "yes",
			accFT[0], accFT[1], accFT[2])
	}
	return t
}

// Figure12 regenerates Figure 12: accuracy versus the number of prompt
// examples for every decoder and example mix (pre-trained models, no
// fine-tuning).
func (l *Lab) Figure12() *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Accuracy vs number of examples in prompt (Figure 12)",
		Header: []string{"model", "mix", "shots", "accuracy"},
	}
	ds := l.Dataset(flowbench.Genome)
	test := l.iclTest(flowbench.Genome)
	for _, name := range decoderOrder() {
		d := l.newDetector(name)
		for _, mix := range []icl.ExampleMix{icl.Mixed, icl.PositiveOnly, icl.NegativeOnly} {
			for _, shots := range l.Scale.Fig12Shots {
				exs := icl.PromptExamples(icl.SelectExamples(ds.Train, shots, mix, l.Scale.Seed+uint64(shots)))
				acc := icl.EvaluateCached(d, test, exs).Accuracy()
				t.Add(name, mix.String(), shots, acc)
			}
		}
	}
	t.Notes = append(t.Notes, "shots=0 is zero-shot (task description only)")
	return t
}

// Table4 regenerates Table IV: zero-shot LLMs (with and without LoRA
// fine-tuning) against unsupervised detectors on ROC-AUC, average precision,
// and precision@k over 1000 Genome.
func (l *Lab) Table4() *Table {
	t := &Table{
		ID:     "table4",
		Title:  "Zero-shot learning vs unsupervised learning (Table IV)",
		Header: []string{"model", "roc_auc", "ave_prec", "prec_at_k"},
	}
	ds := l.Dataset(flowbench.Genome)
	test := l.iclTest(flowbench.Genome)
	labels := baselines.Labels(test)
	addScores := func(name string, scores []float64) {
		t.Add(name,
			metrics.ROCAUC(labels, scores),
			metrics.AveragePrecision(labels, scores),
			metrics.PrecisionAtK(labels, scores, 0))
	}

	iforest := baselines.FitIsolationForest(ds.Train, baselines.DefaultIForestConfig())
	addScores("IF", iforest.Score(test))
	pca := baselines.FitPCA(ds.Train, 4, l.Scale.Seed)
	addScores("PCA", pca.Score(test))
	mlpae := baselines.FitMLPAE(ds.Train, baselines.DefaultAEConfig())
	addScores("MLPAE", mlpae.Score(test))
	gcnae := baselines.FitGCNAE(ds.DAG, ds.Train, baselines.DefaultAEConfig())
	addScores("GCNAE", gcnae.Score(ds.DAG, test))

	// AnomalyDAE on the full training graph exceeds the memory guard, as on
	// the paper's A100.
	full := flowbench.Generate(flowbench.Genome, l.Scale.Seed)
	if _, err := baselines.FitAnomalyDAE(full.DAG, full.Train, baselines.DefaultAEConfig(), 8<<30); errors.Is(err, baselines.ErrOOM) {
		t.Add("AnomalyDAE", "OOM", "OOM", "OOM")
	} else {
		t.Add("AnomalyDAE", "unexpected", "unexpected", "unexpected")
	}

	for _, name := range decoderOrder() {
		base := l.newDetector(name)
		_, scores := icl.AnomalyScoresCached(base, test, nil) // zero-shot
		addScores(name+" (w/o FT)", scores)

		ft := l.newDetector(name)
		icl.FineTune(ft, ds.Train, l.iclFTConfig())
		_, ftScores := icl.AnomalyScoresCached(ft, test, nil)
		addScores(name+" (w/ FT)", ftScores)
	}
	return t
}

// Figure13 regenerates Figure 13: a chain-of-thought classification of a
// single job, with the step-by-step reasoning in the table notes.
func (l *Lab) Figure13() *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "Chain-of-Thought interpretability (Figure 13)",
		Header: []string{"query_label", "predicted", "confidence", "reasoning_steps"},
	}
	ds := l.Dataset(flowbench.Genome)
	d := l.newDetector("mistral")
	icl.FineTune(d, ds.Train, l.iclFTConfig())
	ctx := icl.SelectExamples(ds.Train, 8, icl.Mixed, l.Scale.Seed)
	// Prefer a normal query, matching the paper's worked example.
	query := ds.Test[0]
	for _, j := range ds.Test {
		if j.Label == 0 {
			query = j
			break
		}
	}
	res := icl.ChainOfThought(d, query, ctx)
	t.Add(query.Label, res.Label, res.Confidence, len(res.Steps))
	t.Notes = append(t.Notes, "model input:\n"+res.Prompt)
	t.Notes = append(t.Notes, "model output:\n"+res.Text)
	return t
}

// Figure14 regenerates Figure 14: the 3×3 ICL transfer matrix — LoRA
// fine-tune Mistral on one workflow, then evaluate on each workflow with 10
// in-prompt examples drawn from the evaluation workflow.
func (l *Lab) Figure14() *Table {
	t := &Table{
		ID:     "fig14",
		Title:  "ICL transfer matrix, mistral (Figure 14)",
		Header: []string{"train\\eval", "1000-genome", "montage", "predict-future-sales"},
	}
	const shots = 10
	for _, trainWF := range flowbench.Workflows {
		d := l.newDetector("mistral")
		icl.FineTune(d, l.Dataset(trainWF).Train, l.iclFTConfig())
		row := []interface{}{string(trainWF)}
		for _, evalWF := range flowbench.Workflows {
			exs := icl.PromptExamples(icl.SelectExamples(l.Dataset(evalWF).Train, shots, icl.Mixed, l.Scale.Seed))
			row = append(row, icl.EvaluateCached(d, l.iclTest(evalWF), exs).Accuracy())
		}
		t.Add(row...)
	}
	return t
}
