// Package flowbench is a deterministic synthetic re-implementation of the
// Flow-Bench computational-workflow anomaly benchmark (Papadimitriou et al.,
// arXiv:2306.09930) used by the paper. It provides:
//
//   - the three workflow DAG topologies (1000 Genome, Montage, Predict
//     Future Sales) with exactly the node and edge counts the paper reports
//     (137/289, 539/2838, 165/581);
//   - a per-job feature model over the nine log-derived features the paper
//     classifies on (delays, I/O volumes, CPU time);
//   - CPU and HDD anomaly templates with magnitude subclasses, injected into
//     execution traces "at various points" as the benchmark does;
//   - train/validation/test splits whose per-split normal/anomalous job
//     counts match Table I of the paper exactly.
//
// The real Flow-Bench injects anomalies into live Pegasus executions by
// capping cores (CPU class) and throttling disk bandwidth (HDD class); here
// the same distortions are applied to synthetic baseline distributions, which
// preserves the detectable signal (multiplicative shifts in runtime/cpu_time
// and stage-in/out delays) without the testbed.
package flowbench

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Workflow identifies one of the three Flow-Bench workflows.
type Workflow string

// The three Flow-Bench workflows.
const (
	Genome  Workflow = "1000-genome"
	Montage Workflow = "montage"
	Sales   Workflow = "predict-future-sales"
)

// Workflows lists all workflows in the paper's presentation order.
var Workflows = []Workflow{Genome, Montage, Sales}

// Node is a single task in a workflow DAG.
type Node struct {
	// TaskType is the executable category (e.g. "individuals", "mProject").
	TaskType string
	// Level is the topological layer the node belongs to.
	Level int
}

// DAG is a workflow graph. Edges are (parent, child) pairs with
// parent < child impossible to violate (nodes are stored in topological
// order).
type DAG struct {
	Workflow Workflow
	Nodes    []Node
	Edges    [][2]int
}

// NumNodes returns the node count.
func (d *DAG) NumNodes() int { return len(d.Nodes) }

// NumEdges returns the edge count.
func (d *DAG) NumEdges() int { return len(d.Edges) }

// Children returns an adjacency list of child indices per node.
func (d *DAG) Children() [][]int {
	out := make([][]int, len(d.Nodes))
	for _, e := range d.Edges {
		out[e[0]] = append(out[e[0]], e[1])
	}
	return out
}

// Parents returns an adjacency list of parent indices per node.
func (d *DAG) Parents() [][]int {
	out := make([][]int, len(d.Nodes))
	for _, e := range d.Edges {
		out[e[1]] = append(out[e[1]], e[0])
	}
	return out
}

// levelSpec describes one layer of a layered workflow DAG: count nodes of a
// task type, each drawing fanIn edges from the previous layer (0 for source
// layers, -1 for "all of previous layer").
type levelSpec struct {
	taskType string
	count    int
	fanIn    int
}

// buildLayered constructs a layered DAG: each node in layer i>0 with
// fanIn=k gets k distinct parents from layer i-1 assigned round-robin;
// fanIn=-1 connects to every node of the previous layer.
func buildLayered(wf Workflow, levels []levelSpec) *DAG {
	d := &DAG{Workflow: wf}
	var prev []int // node indices of previous layer
	for li, spec := range levels {
		var cur []int
		for c := 0; c < spec.count; c++ {
			idx := len(d.Nodes)
			d.Nodes = append(d.Nodes, Node{TaskType: spec.taskType, Level: li})
			cur = append(cur, idx)
			switch {
			case spec.fanIn == 0 || len(prev) == 0:
				// source node
			case spec.fanIn < 0:
				for _, p := range prev {
					d.Edges = append(d.Edges, [2]int{p, idx})
				}
			default:
				for k := 0; k < spec.fanIn && k < len(prev); k++ {
					p := prev[(c*spec.fanIn+k)%len(prev)]
					d.Edges = append(d.Edges, [2]int{p, idx})
				}
			}
		}
		prev = cur
	}
	return d
}

// padEdges deterministically adds forward cross-level edges until the DAG
// has exactly target edges. Added edges always point from a lower level to a
// strictly higher level, so acyclicity is preserved. Panics if the topology
// cannot host that many edges.
func padEdges(d *DAG, target int, rng *tensor.RNG) {
	have := make(map[[2]int]bool, len(d.Edges))
	for _, e := range d.Edges {
		have[e] = true
	}
	n := len(d.Nodes)
	attempts := 0
	for len(d.Edges) < target {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if d.Nodes[u].Level >= d.Nodes[v].Level {
			attempts++
			if attempts > 200*target {
				panic(fmt.Sprintf("flowbench: cannot pad %s to %d edges", d.Workflow, target))
			}
			continue
		}
		e := [2]int{u, v}
		if have[e] {
			attempts++
			if attempts > 200*target {
				panic(fmt.Sprintf("flowbench: cannot pad %s to %d edges", d.Workflow, target))
			}
			continue
		}
		have[e] = true
		d.Edges = append(d.Edges, e)
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i][0] != d.Edges[j][0] {
			return d.Edges[i][0] < d.Edges[j][0]
		}
		return d.Edges[i][1] < d.Edges[j][1]
	})
}

// BuildDAG returns the workflow's DAG with the exact node/edge counts the
// paper reports: 1000 Genome 137/289, Montage 539/2838, Sales 165/581.
func BuildDAG(wf Workflow) *DAG {
	rng := tensor.NewRNG(0xf10b + uint64(len(wf)))
	var d *DAG
	var targetEdges int
	switch wf {
	case Genome:
		// individuals → individuals_merge → {mutation_overlap, frequency} →
		// summary, with sifting feeding the analysis stage.
		d = buildLayered(wf, []levelSpec{
			{"individuals", 90, 0},
			{"individuals_merge", 9, 10},
			{"sifting", 9, 1},
			{"mutation_overlap", 14, 2},
			{"frequency", 14, 2},
			{"summary", 1, -1},
		})
		targetEdges = 289
	case Montage:
		d = buildLayered(wf, []levelSpec{
			{"mProject", 120, 0},
			{"mDiffFit", 300, 2},
			{"mConcatFit", 1, -1},
			{"mBackground", 100, 1},
			{"mImgtbl", 1, -1},
			{"mAdd", 1, -1},
			{"mShrink", 10, 1},
			{"mJPEG", 6, 1},
		})
		targetEdges = 2838
	case Sales:
		d = buildLayered(wf, []levelSpec{
			{"ingest", 30, 0},
			{"preprocess", 60, 2},
			{"feature_eng", 40, 2},
			{"train_model", 20, 2},
			{"validate", 10, 2},
			{"predict", 4, 2},
			{"aggregate", 1, -1},
		})
		targetEdges = 581
	default:
		panic(fmt.Sprintf("flowbench: unknown workflow %q", wf))
	}
	if len(d.Edges) > targetEdges {
		panic(fmt.Sprintf("flowbench: %s base topology has %d edges > target %d", wf, len(d.Edges), targetEdges))
	}
	padEdges(d, targetEdges, rng)
	return d
}

// Validate checks DAG invariants: edges within range, forward-only by level,
// no duplicates, and acyclic by construction.
func (d *DAG) Validate() error {
	seen := make(map[[2]int]bool, len(d.Edges))
	for _, e := range d.Edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= len(d.Nodes) || v >= len(d.Nodes) {
			return fmt.Errorf("flowbench: edge (%d,%d) out of range", u, v)
		}
		if d.Nodes[u].Level >= d.Nodes[v].Level {
			return fmt.Errorf("flowbench: edge (%d,%d) not forward by level", u, v)
		}
		if seen[e] {
			return fmt.Errorf("flowbench: duplicate edge (%d,%d)", u, v)
		}
		seen[e] = true
	}
	return nil
}
