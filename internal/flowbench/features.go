package flowbench

import (
	"fmt"

	"repro/internal/tensor"
)

// FeatureNames lists the nine log-derived job features in the sequential
// order they become available during execution (the order Figures 7 and 8 of
// the paper use for online/early detection).
var FeatureNames = []string{
	"wms_delay",
	"queue_delay",
	"runtime",
	"post_script_delay",
	"stage_in_delay",
	"stage_out_delay",
	"bytes_in",
	"bytes_out",
	"cpu_time",
}

// Feature indices into Job.Features.
const (
	FWMSDelay = iota
	FQueueDelay
	FRuntime
	FPostScriptDelay
	FStageInDelay
	FStageOutDelay
	FBytesIn
	FBytesOut
	FCPUTime
	NumFeatures
)

// AnomalyClass identifies the injected anomaly template of a job.
type AnomalyClass int

// Anomaly classes: Flow-Bench's two main performance-degradation classes
// (CPU core capping and HDD bandwidth throttling) with magnitude subclasses.
const (
	None  AnomalyClass = iota
	CPU2               // 2 of the advertised cores usable
	CPU3               // 3 usable
	CPU4               // 4 usable
	HDD5               // disk throttled to ~5 MB/s
	HDD10              // disk throttled to ~10 MB/s
)

// AnomalyClasses lists the injectable (non-None) classes.
var AnomalyClasses = []AnomalyClass{CPU2, CPU3, CPU4, HDD5, HDD10}

// String names the anomaly class.
func (a AnomalyClass) String() string {
	switch a {
	case None:
		return "none"
	case CPU2:
		return "cpu_2"
	case CPU3:
		return "cpu_3"
	case CPU4:
		return "cpu_4"
	case HDD5:
		return "hdd_5"
	case HDD10:
		return "hdd_10"
	}
	return fmt.Sprintf("anomaly(%d)", int(a))
}

// IsCPU reports whether the class is a CPU-capping anomaly.
func (a AnomalyClass) IsCPU() bool { return a == CPU2 || a == CPU3 || a == CPU4 }

// IsHDD reports whether the class is a disk-throttling anomaly.
func (a AnomalyClass) IsHDD() bool { return a == HDD5 || a == HDD10 }

// Job is one task execution record parsed from workflow logs.
type Job struct {
	// Workflow the job belongs to.
	Workflow Workflow
	// TraceID identifies the workflow execution the job is part of.
	TraceID int
	// NodeIndex is the job's node in the workflow DAG.
	NodeIndex int
	// TaskType is the DAG node's executable category.
	TaskType string
	// Features holds the NumFeatures values in FeatureNames order.
	Features [NumFeatures]float64
	// Label is 1 for anomalous, 0 for normal.
	Label int
	// Anomaly is the injected template (None when Label == 0).
	Anomaly AnomalyClass
}

// taskProfile holds the log-space baseline parameters of a task type's
// feature distributions.
type taskProfile struct {
	runtimeMu, runtimeSigma float64 // lognormal runtime (seconds)
	bytesInMu, bytesInSig   float64 // lognormal input volume (bytes)
	bytesOutMu, bytesOutSig float64 // lognormal output volume (bytes)
	cpuFrac                 float64 // mean cpu_time / runtime ratio
}

// profiles maps task types to baseline distributions. Magnitudes follow the
// published Flow-Bench characterization: long compute-bound genome tasks,
// many short I/O-heavy Montage tasks, medium ML-pipeline tasks.
var profiles = map[string]taskProfile{
	// 1000 Genome
	"individuals":       {7.6, 0.25, 19.5, 0.3, 17.5, 0.3, 0.92},
	"individuals_merge": {5.7, 0.25, 18.8, 0.3, 18.0, 0.3, 0.80},
	"sifting":           {4.0, 0.3, 17.2, 0.3, 15.0, 0.3, 0.85},
	"mutation_overlap":  {5.1, 0.3, 17.8, 0.3, 14.5, 0.3, 0.90},
	"frequency":         {5.5, 0.3, 17.8, 0.3, 15.2, 0.3, 0.90},
	"summary":           {3.5, 0.3, 15.0, 0.3, 13.0, 0.3, 0.70},
	// Montage
	"mProject":    {4.6, 0.3, 18.9, 0.3, 18.6, 0.3, 0.85},
	"mDiffFit":    {2.3, 0.35, 15.8, 0.3, 13.5, 0.3, 0.75},
	"mConcatFit":  {3.9, 0.3, 16.2, 0.3, 14.0, 0.3, 0.70},
	"mBackground": {2.7, 0.3, 16.8, 0.3, 16.8, 0.3, 0.78},
	"mImgtbl":     {3.0, 0.3, 17.5, 0.3, 14.0, 0.3, 0.65},
	"mAdd":        {5.0, 0.3, 18.5, 0.3, 18.6, 0.3, 0.72},
	"mShrink":     {2.5, 0.3, 17.0, 0.3, 15.5, 0.3, 0.70},
	"mJPEG":       {2.2, 0.3, 16.0, 0.3, 15.8, 0.3, 0.80},
	// Predict Future Sales
	"ingest":      {4.2, 0.3, 18.5, 0.3, 18.3, 0.3, 0.55},
	"preprocess":  {5.0, 0.3, 18.0, 0.3, 17.6, 0.3, 0.82},
	"feature_eng": {5.6, 0.3, 17.6, 0.3, 17.0, 0.3, 0.88},
	"train_model": {6.8, 0.3, 16.8, 0.3, 15.2, 0.3, 0.95},
	"validate":    {4.6, 0.3, 15.8, 0.3, 13.8, 0.3, 0.85},
	"predict":     {4.3, 0.3, 16.5, 0.3, 16.0, 0.3, 0.85},
	"aggregate":   {3.6, 0.3, 17.0, 0.3, 16.5, 0.3, 0.60},
}

// diskRate is the nominal healthy disk bandwidth in bytes/second used to
// derive stage-in/out delays from transfer volumes.
const diskRate = 120e6

// sampleBaseline draws a normal (non-anomalous) feature vector for the task
// type.
func sampleBaseline(taskType string, rng *tensor.RNG) [NumFeatures]float64 {
	p, ok := profiles[taskType]
	if !ok {
		panic(fmt.Sprintf("flowbench: no profile for task type %q", taskType))
	}
	var f [NumFeatures]float64
	f[FWMSDelay] = rng.LogNormal(1.7, 0.4)   // ~5.5 s
	f[FQueueDelay] = rng.LogNormal(3.0, 0.5) // ~20 s
	f[FRuntime] = rng.LogNormal(p.runtimeMu, p.runtimeSigma)
	f[FPostScriptDelay] = rng.LogNormal(1.6, 0.3) // ~5 s
	f[FBytesIn] = rng.LogNormal(p.bytesInMu, p.bytesInSig)
	f[FBytesOut] = rng.LogNormal(p.bytesOutMu, p.bytesOutSig)
	f[FStageInDelay] = f[FBytesIn]/diskRate + rng.LogNormal(0.0, 0.3)
	f[FStageOutDelay] = f[FBytesOut]/diskRate + rng.LogNormal(-0.3, 0.3)
	f[FCPUTime] = f[FRuntime] * clamp(p.cpuFrac+0.03*rng.NormFloat64(), 0.05, 1)
	return f
}

// applyAnomaly distorts a baseline feature vector in place according to the
// anomaly template, reproducing Flow-Bench's injection semantics:
//
//   - CPU-K: the worker advertises a fixed core count but only K cores can
//     process, so wall-clock runtime inflates by the contention factor while
//     useful cpu_time stays roughly flat — the cpu_time/runtime ratio drops.
//   - HDD-K: read/write bandwidth is capped near K MB/s, so stage-in/out
//     delays inflate proportionally to transfer volume, with a small
//     knock-on runtime increase from I/O waits.
func applyAnomaly(f *[NumFeatures]float64, a AnomalyClass, rng *tensor.RNG) {
	jitter := func(base float64) float64 { return base * (1 + 0.08*rng.NormFloat64()) }
	switch a {
	case CPU2:
		factor := jitter(3.2)
		f[FRuntime] *= factor
		f[FCPUTime] *= jitter(1.05)
	case CPU3:
		factor := jitter(2.1)
		f[FRuntime] *= factor
		f[FCPUTime] *= jitter(1.04)
	case CPU4:
		factor := jitter(1.6)
		f[FRuntime] *= factor
		f[FCPUTime] *= jitter(1.03)
	case HDD5:
		cap5 := 5e6
		f[FStageInDelay] = f[FBytesIn]/cap5 + rng.LogNormal(0.0, 0.3)
		f[FStageOutDelay] = f[FBytesOut]/cap5 + rng.LogNormal(-0.3, 0.3)
		f[FRuntime] *= jitter(1.15)
	case HDD10:
		cap10 := 10e6
		f[FStageInDelay] = f[FBytesIn]/cap10 + rng.LogNormal(0.0, 0.3)
		f[FStageOutDelay] = f[FBytesOut]/cap10 + rng.LogNormal(-0.3, 0.3)
		f[FRuntime] *= jitter(1.08)
	default:
		panic(fmt.Sprintf("flowbench: applyAnomaly on %v", a))
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
