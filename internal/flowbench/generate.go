package flowbench

import (
	"fmt"

	"repro/internal/tensor"
)

// tableI is the per-split (train, validation, test) × (normal, anomalous)
// job-count specification from Table I of the paper. The generator produces
// datasets matching these counts exactly.
var tableI = map[Workflow][3][2]int{
	Genome:  {{25911, 12558}, {3258, 1551}, {3229, 1580}},
	Montage: {{109738, 28246}, {13735, 3513}, {13756, 3492}},
	Sales:   {{58043, 13237}, {7250, 1660}, {7316, 1594}},
}

// SplitNames labels the three splits in Table I order.
var SplitNames = []string{"train", "validation", "test"}

// Dataset is a generated Flow-Bench-style dataset for one workflow.
type Dataset struct {
	Workflow Workflow
	DAG      *DAG
	Train    []Job
	Val      []Job
	Test     []Job
}

// Split returns the named split ("train", "validation", "test").
func (ds *Dataset) Split(name string) []Job {
	switch name {
	case "train":
		return ds.Train
	case "validation":
		return ds.Val
	case "test":
		return ds.Test
	}
	panic(fmt.Sprintf("flowbench: unknown split %q", name))
}

// Jobs returns every job in the dataset as one slice in train, validation,
// test order — the raw material for trace-level consumers (the scenario lab
// regroups it with TraceJobs to recover complete executions, since the
// splits shuffle jobs across traces).
func (ds *Dataset) Jobs() []Job {
	out := make([]Job, 0, len(ds.Train)+len(ds.Val)+len(ds.Test))
	out = append(out, ds.Train...)
	out = append(out, ds.Val...)
	out = append(out, ds.Test...)
	return out
}

// NumTraces returns the number of workflow executions in the full dataset.
func (ds *Dataset) NumTraces() int {
	n := ds.DAG.NumNodes()
	return (len(ds.Train) + len(ds.Val) + len(ds.Test)) / n
}

// TableICounts returns the paper's Table I specification for wf as
// [split][normal, anomalous].
func TableICounts(wf Workflow) [3][2]int { return tableI[wf] }

// TraceTarget returns the number of traces Generate produces for wf; summed
// over the three workflows this is Flow-Bench's 1211 execution traces.
func TraceTarget(wf Workflow) int {
	spec := tableI[wf]
	total := 0
	for _, s := range spec {
		total += s[0] + s[1]
	}
	return total / BuildDAG(wf).NumNodes()
}

// Generate produces the full dataset for a workflow: TraceTarget(wf)
// execution traces over the workflow DAG with CPU/HDD anomalies injected at
// various points, split so each split's normal/anomalous counts equal Table
// I exactly. Generation is deterministic in seed.
func Generate(wf Workflow, seed uint64) *Dataset {
	d := BuildDAG(wf)
	spec, ok := tableI[wf]
	if !ok {
		panic(fmt.Sprintf("flowbench: unknown workflow %q", wf))
	}
	n := d.NumNodes()
	totalJobs, totalAnom := 0, 0
	for _, s := range spec {
		totalJobs += s[0] + s[1]
		totalAnom += s[1]
	}
	if totalJobs%n != 0 {
		panic(fmt.Sprintf("flowbench: %s total jobs %d not divisible by %d nodes", wf, totalJobs, n))
	}
	traces := totalJobs / n

	rng := tensor.NewRNG(seed ^ uint64(len(wf))<<32)
	counts := allocateAnomalies(traces, n, totalAnom, rng)

	jobs := make([]Job, 0, totalJobs)
	for t := 0; t < traces; t++ {
		jobs = append(jobs, generateTrace(d, t, counts[t], rng)...)
	}

	return split(wf, d, jobs, spec, rng)
}

// allocateAnomalies distributes totalAnom anomalous jobs over traces: about
// 70% of traces are anomaly candidates with sizes drawn uniformly, then
// counts are nudged round-robin until the total is exact.
func allocateAnomalies(traces, nodes, totalAnom int, rng *tensor.RNG) []int {
	counts := make([]int, traces)
	candidates := (traces*7 + 9) / 10
	order := rng.Perm(traces)
	sum := 0
	for i := 0; i < candidates; i++ {
		lo, hi := nodes/10, nodes*6/10
		c := lo + rng.Intn(hi-lo+1)
		counts[order[i]] = c
		sum += c
	}
	// Nudge to exact total.
	for i := 0; sum != totalAnom; i = (i + 1) % candidates {
		t := order[i]
		if sum < totalAnom && counts[t] < nodes {
			counts[t]++
			sum++
		} else if sum > totalAnom && counts[t] > 0 {
			counts[t]--
			sum--
		}
	}
	return counts
}

// generateTrace produces the jobs of one workflow execution, injecting
// anomCount anomalous nodes as a contiguous topological segment starting at
// a random point (matching Flow-Bench's "injected at various points").
func generateTrace(d *DAG, traceID, anomCount int, rng *tensor.RNG) []Job {
	n := d.NumNodes()
	anomalous := make([]bool, n)
	var class AnomalyClass = None
	if anomCount > 0 {
		class = AnomalyClasses[rng.Intn(len(AnomalyClasses))]
		start := 0
		if anomCount < n {
			start = rng.Intn(n - anomCount + 1)
		}
		for i := start; i < start+anomCount; i++ {
			anomalous[i] = true
		}
	}
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		node := d.Nodes[i]
		f := sampleBaseline(node.TaskType, rng)
		j := Job{
			Workflow:  d.Workflow,
			TraceID:   traceID,
			NodeIndex: i,
			TaskType:  node.TaskType,
			Features:  f,
		}
		if anomalous[i] {
			applyAnomaly(&j.Features, class, rng)
			j.Label = 1
			j.Anomaly = class
		}
		jobs[i] = j
	}
	return jobs
}

// split partitions jobs into train/val/test with the exact per-split
// normal/anomalous counts of spec, shuffling within each stratum.
func split(wf Workflow, d *DAG, jobs []Job, spec [3][2]int, rng *tensor.RNG) *Dataset {
	var normal, anom []Job
	for _, j := range jobs {
		if j.Label == 0 {
			normal = append(normal, j)
		} else {
			anom = append(anom, j)
		}
	}
	shuffleJobs(normal, rng)
	shuffleJobs(anom, rng)
	wantNormal := spec[0][0] + spec[1][0] + spec[2][0]
	wantAnom := spec[0][1] + spec[1][1] + spec[2][1]
	if len(normal) != wantNormal || len(anom) != wantAnom {
		panic(fmt.Sprintf("flowbench: %s generated %d/%d normal/anomalous, want %d/%d",
			wf, len(normal), len(anom), wantNormal, wantAnom))
	}
	ds := &Dataset{Workflow: wf, DAG: d}
	ni, ai := 0, 0
	for s, counts := range spec {
		part := make([]Job, 0, counts[0]+counts[1])
		part = append(part, normal[ni:ni+counts[0]]...)
		part = append(part, anom[ai:ai+counts[1]]...)
		ni += counts[0]
		ai += counts[1]
		shuffleJobs(part, rng)
		switch s {
		case 0:
			ds.Train = part
		case 1:
			ds.Val = part
		case 2:
			ds.Test = part
		}
	}
	return ds
}

func shuffleJobs(jobs []Job, rng *tensor.RNG) {
	for i := len(jobs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		jobs[i], jobs[j] = jobs[j], jobs[i]
	}
}

// GenerateAll generates all three workflow datasets with seeds derived from
// seed.
func GenerateAll(seed uint64) map[Workflow]*Dataset {
	out := make(map[Workflow]*Dataset, len(Workflows))
	for i, wf := range Workflows {
		out[wf] = Generate(wf, seed+uint64(i)*0x1000)
	}
	return out
}

// Subsample returns a smaller dataset with stratified (label-preserving)
// random subsets of each split — the working scale for CPU-bound training
// experiments. Requested sizes are clamped to the available split sizes.
func (ds *Dataset) Subsample(nTrain, nVal, nTest int, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	out := &Dataset{Workflow: ds.Workflow, DAG: ds.DAG}
	out.Train = stratifiedSample(ds.Train, nTrain, rng)
	out.Val = stratifiedSample(ds.Val, nVal, rng)
	out.Test = stratifiedSample(ds.Test, nTest, rng)
	return out
}

func stratifiedSample(jobs []Job, n int, rng *tensor.RNG) []Job {
	if n >= len(jobs) {
		out := make([]Job, len(jobs))
		copy(out, jobs)
		return out
	}
	var normal, anom []Job
	for _, j := range jobs {
		if j.Label == 0 {
			normal = append(normal, j)
		} else {
			anom = append(anom, j)
		}
	}
	frac := float64(len(anom)) / float64(len(jobs))
	nAnom := int(frac*float64(n) + 0.5)
	if nAnom > len(anom) {
		nAnom = len(anom)
	}
	nNormal := n - nAnom
	if nNormal > len(normal) {
		nNormal = len(normal)
	}
	shuffleJobs(normal, rng)
	shuffleJobs(anom, rng)
	out := make([]Job, 0, nNormal+nAnom)
	out = append(out, normal[:nNormal]...)
	out = append(out, anom[:nAnom]...)
	shuffleJobs(out, rng)
	return out
}

// SplitStats summarizes one split for Table I.
type SplitStats struct {
	Split     string
	Normal    int
	Anomalous int
}

// Fraction returns the anomaly rate of the split.
func (s SplitStats) Fraction() float64 {
	t := s.Normal + s.Anomalous
	if t == 0 {
		return 0
	}
	return float64(s.Anomalous) / float64(t)
}

// Stats returns per-split statistics in Table I order.
func (ds *Dataset) Stats() [3]SplitStats {
	count := func(name string, jobs []Job) SplitStats {
		st := SplitStats{Split: name}
		for _, j := range jobs {
			if j.Label == 0 {
				st.Normal++
			} else {
				st.Anomalous++
			}
		}
		return st
	}
	return [3]SplitStats{
		count("train", ds.Train),
		count("validation", ds.Val),
		count("test", ds.Test),
	}
}

// TraceJobs groups a job slice by trace, returning jobs ordered by node
// index within each trace (for graph-based baselines and online detection).
func TraceJobs(jobs []Job) map[int][]Job {
	out := make(map[int][]Job)
	for _, j := range jobs {
		out[j.TraceID] = append(out[j.TraceID], j)
	}
	for _, trace := range out {
		for i := 1; i < len(trace); i++ {
			for k := i; k > 0 && trace[k].NodeIndex < trace[k-1].NodeIndex; k-- {
				trace[k], trace[k-1] = trace[k-1], trace[k]
			}
		}
	}
	return out
}
