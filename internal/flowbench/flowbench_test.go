package flowbench

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDAGCountsMatchPaper(t *testing.T) {
	want := map[Workflow][2]int{
		Genome:  {137, 289},
		Montage: {539, 2838},
		Sales:   {165, 581},
	}
	for wf, w := range want {
		d := BuildDAG(wf)
		if d.NumNodes() != w[0] || d.NumEdges() != w[1] {
			t.Errorf("%s DAG = %d nodes / %d edges, want %d/%d",
				wf, d.NumNodes(), d.NumEdges(), w[0], w[1])
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", wf, err)
		}
	}
}

func TestDAGDeterministic(t *testing.T) {
	d1 := BuildDAG(Genome)
	d2 := BuildDAG(Genome)
	if d1.NumEdges() != d2.NumEdges() {
		t.Fatal("DAG construction not deterministic")
	}
	for i := range d1.Edges {
		if d1.Edges[i] != d2.Edges[i] {
			t.Fatal("DAG edges not deterministic")
		}
	}
}

func TestDAGAdjacency(t *testing.T) {
	d := BuildDAG(Genome)
	children := d.Children()
	parents := d.Parents()
	nc, np := 0, 0
	for i := range d.Nodes {
		nc += len(children[i])
		np += len(parents[i])
	}
	if nc != d.NumEdges() || np != d.NumEdges() {
		t.Fatalf("adjacency edge totals %d/%d, want %d", nc, np, d.NumEdges())
	}
}

func TestBuildDAGUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown workflow")
		}
	}()
	BuildDAG(Workflow("bogus"))
}

func TestBaselineFeaturesPositive(t *testing.T) {
	rng := tensor.NewRNG(1)
	for taskType := range profiles {
		f := sampleBaseline(taskType, rng)
		for i, v := range f {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s feature %s = %v", taskType, FeatureNames[i], v)
			}
		}
		if f[FCPUTime] > f[FRuntime]*1.001 {
			t.Fatalf("%s cpu_time %v exceeds runtime %v", taskType, f[FCPUTime], f[FRuntime])
		}
	}
}

func TestCPUAnomalyInflatesRuntimeNotCPUTime(t *testing.T) {
	rng := tensor.NewRNG(2)
	const trials = 200
	var baseRT, anomRT, baseRatio, anomRatio float64
	for i := 0; i < trials; i++ {
		f := sampleBaseline("individuals", rng)
		baseRT += f[FRuntime]
		baseRatio += f[FCPUTime] / f[FRuntime]
		g := f
		applyAnomaly(&g, CPU2, rng)
		anomRT += g[FRuntime]
		anomRatio += g[FCPUTime] / g[FRuntime]
	}
	if anomRT < 2*baseRT {
		t.Fatalf("CPU2 runtime inflation %v, want ≥2x", anomRT/baseRT)
	}
	if anomRatio >= baseRatio {
		t.Fatal("CPU anomaly must depress the cpu_time/runtime ratio")
	}
}

func TestCPUAnomalyMagnitudeOrdering(t *testing.T) {
	rng := tensor.NewRNG(3)
	mean := func(class AnomalyClass) float64 {
		var s float64
		for i := 0; i < 300; i++ {
			f := sampleBaseline("individuals", rng)
			applyAnomaly(&f, class, rng)
			s += f[FRuntime]
		}
		return s / 300
	}
	m2, m3, m4 := mean(CPU2), mean(CPU3), mean(CPU4)
	if !(m2 > m3 && m3 > m4) {
		t.Fatalf("CPU slowdown not ordered: cpu2=%v cpu3=%v cpu4=%v", m2, m3, m4)
	}
}

func TestHDDAnomalyInflatesStageDelays(t *testing.T) {
	rng := tensor.NewRNG(4)
	var baseIn, anomIn5, anomIn10 float64
	for i := 0; i < 200; i++ {
		f := sampleBaseline("mProject", rng)
		baseIn += f[FStageInDelay]
		g5, g10 := f, f
		applyAnomaly(&g5, HDD5, rng)
		applyAnomaly(&g10, HDD10, rng)
		anomIn5 += g5[FStageInDelay]
		anomIn10 += g10[FStageInDelay]
	}
	if anomIn5 < 3*baseIn {
		t.Fatalf("HDD5 stage-in inflation %v, want large", anomIn5/baseIn)
	}
	if anomIn5 <= anomIn10 {
		t.Fatal("HDD5 (tighter cap) must be slower than HDD10")
	}
}

func TestAnomalyClassPredicates(t *testing.T) {
	for _, a := range []AnomalyClass{CPU2, CPU3, CPU4} {
		if !a.IsCPU() || a.IsHDD() {
			t.Fatalf("%v predicates wrong", a)
		}
	}
	for _, a := range []AnomalyClass{HDD5, HDD10} {
		if !a.IsHDD() || a.IsCPU() {
			t.Fatalf("%v predicates wrong", a)
		}
	}
	if None.IsCPU() || None.IsHDD() {
		t.Fatal("None predicates wrong")
	}
	if None.String() != "none" || CPU2.String() != "cpu_2" {
		t.Fatal("anomaly names wrong")
	}
}

func TestGenerateMatchesTableI(t *testing.T) {
	for _, wf := range Workflows {
		ds := Generate(wf, 42)
		spec := TableICounts(wf)
		stats := ds.Stats()
		for s := range spec {
			if stats[s].Normal != spec[s][0] || stats[s].Anomalous != spec[s][1] {
				t.Errorf("%s %s = %d/%d normal/anom, want %d/%d",
					wf, stats[s].Split, stats[s].Normal, stats[s].Anomalous, spec[s][0], spec[s][1])
			}
		}
	}
}

func TestGenerateTraceCountTotals1211(t *testing.T) {
	total := 0
	for _, wf := range Workflows {
		total += TraceTarget(wf)
	}
	if total != 1211 {
		t.Fatalf("total traces = %d, want 1211 (Flow-Bench)", total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Genome, 7)
	b := Generate(Genome, 7)
	for i := range a.Train[:100] {
		if a.Train[i].Features != b.Train[i].Features || a.Train[i].Label != b.Train[i].Label {
			t.Fatal("generation not deterministic")
		}
	}
	c := Generate(Genome, 8)
	same := true
	for i := range a.Train[:100] {
		if a.Train[i].Features != c.Train[i].Features {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratedJobsConsistent(t *testing.T) {
	ds := Generate(Genome, 1)
	for _, j := range ds.Train[:1000] {
		if j.Label == 0 && j.Anomaly != None {
			t.Fatal("normal job carries anomaly class")
		}
		if j.Label == 1 && j.Anomaly == None {
			t.Fatal("anomalous job missing anomaly class")
		}
		if j.NodeIndex < 0 || j.NodeIndex >= ds.DAG.NumNodes() {
			t.Fatal("node index out of range")
		}
		if j.TaskType != ds.DAG.Nodes[j.NodeIndex].TaskType {
			t.Fatal("task type mismatch with DAG node")
		}
	}
}

func TestAnomaliesAreContiguousPerTrace(t *testing.T) {
	ds := Generate(Genome, 3)
	all := append(append(append([]Job{}, ds.Train...), ds.Val...), ds.Test...)
	traces := TraceJobs(all)
	if len(traces) != TraceTarget(Genome) {
		t.Fatalf("trace count = %d, want %d", len(traces), TraceTarget(Genome))
	}
	for id, trace := range traces {
		if len(trace) != ds.DAG.NumNodes() {
			t.Fatalf("trace %d has %d jobs, want %d", id, len(trace), ds.DAG.NumNodes())
		}
		// Single contiguous anomalous segment (or none), one class per trace.
		segStarts := 0
		var class AnomalyClass
		for i, j := range trace {
			if j.Label == 1 {
				if class == None {
					class = j.Anomaly
				} else if j.Anomaly != class {
					t.Fatalf("trace %d mixes anomaly classes", id)
				}
				if i == 0 || trace[i-1].Label == 0 {
					segStarts++
				}
			}
		}
		if segStarts > 1 {
			t.Fatalf("trace %d has %d anomaly segments, want ≤1", id, segStarts)
		}
	}
}

func TestSubsampleStratified(t *testing.T) {
	ds := Generate(Genome, 5)
	sub := ds.Subsample(1000, 200, 200, 9)
	if len(sub.Train) != 1000 || len(sub.Val) != 200 || len(sub.Test) != 200 {
		t.Fatalf("subsample sizes %d/%d/%d", len(sub.Train), len(sub.Val), len(sub.Test))
	}
	fullFrac := ds.Stats()[0].Fraction()
	subFrac := sub.Stats()[0].Fraction()
	if math.Abs(fullFrac-subFrac) > 0.02 {
		t.Fatalf("subsample anomaly fraction %v, want ≈%v", subFrac, fullFrac)
	}
	// Requesting more than available returns everything.
	tiny := ds.Subsample(1, 1, 1, 9)
	big := tiny.Subsample(100, 100, 100, 9)
	if len(big.Train) != 1 {
		t.Fatal("oversized subsample must clamp")
	}
}

func TestSplitAccessor(t *testing.T) {
	ds := Generate(Genome, 6).Subsample(10, 10, 10, 1)
	if len(ds.Split("train")) != 10 || len(ds.Split("validation")) != 10 || len(ds.Split("test")) != 10 {
		t.Fatal("Split accessor returned wrong parts")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown split")
		}
	}()
	ds.Split("bogus")
}

func TestAnomalyFractionsMatchPaper(t *testing.T) {
	// The paper reports ~0.33 / ~0.20 / ~0.19 anomaly rates.
	want := map[Workflow]float64{Genome: 0.326, Montage: 0.204, Sales: 0.186}
	for wf, w := range want {
		ds := Generate(wf, 11)
		got := ds.Stats()[0].Fraction()
		if math.Abs(got-w) > 0.01 {
			t.Errorf("%s train anomaly fraction %v, want ≈%v", wf, got, w)
		}
	}
}

// Property: allocateAnomalies always hits the exact total and never exceeds
// per-trace capacity.
func TestAllocateAnomaliesExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		traces := 5 + rng.Intn(50)
		nodes := 10 + rng.Intn(100)
		target := rng.Intn(traces * nodes / 2)
		counts := allocateAnomalies(traces, nodes, target, rng)
		sum := 0
		for _, c := range counts {
			if c < 0 || c > nodes {
				return false
			}
			sum += c
		}
		return sum == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetJobsRecoversCompleteTraces(t *testing.T) {
	ds := Generate(Genome, 21)
	all := ds.Jobs()
	if len(all) != len(ds.Train)+len(ds.Val)+len(ds.Test) {
		t.Fatalf("Jobs() returned %d jobs, want %d", len(all), len(ds.Train)+len(ds.Val)+len(ds.Test))
	}
	// The splits shuffle jobs across traces; regrouping the full dataset must
	// recover every execution intact: NumTraces traces, each with exactly one
	// job per DAG node in node order.
	byTrace := TraceJobs(all)
	if len(byTrace) != ds.NumTraces() {
		t.Fatalf("regrouped %d traces, want %d", len(byTrace), ds.NumTraces())
	}
	n := ds.DAG.NumNodes()
	for id, trace := range byTrace {
		if len(trace) != n {
			t.Fatalf("trace %d has %d jobs, want %d", id, len(trace), n)
		}
		for i, j := range trace {
			if j.NodeIndex != i {
				t.Fatalf("trace %d job %d has node index %d", id, i, j.NodeIndex)
			}
		}
	}
}
