// Package tokenizer implements the shared vocabulary used by all models in
// this repository. Log-derived sentences are split into whitespace word
// tokens; numeric values are discretized into logarithmic magnitude buckets
// so that models can compare magnitudes (the signal that distinguishes
// normal from anomalous jobs) without an unbounded numeral vocabulary.
//
// Unlike LogBERT/LogGPT-style systems, which bake a log-template vocabulary
// into the model, this tokenizer is built from any corpus, so the same model
// generalizes across the three Flow-Bench workflows — the portability
// property the paper claims over prior log-anomaly work.
package tokenizer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Special token ids are fixed so models can depend on them.
const (
	PAD  = 0
	UNK  = 1
	CLS  = 2
	SEP  = 3
	MASK = 4
	BOS  = 5
	EOS  = 6
)

var specialTokens = []string{"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[BOS]", "[EOS]"}

// NumBuckets is the count of logarithmic magnitude buckets for numeric
// tokens. Quarter-decade resolution distinguishes the ≈2× shifts injected by
// the CPU/HDD anomaly templates while keeping the vocabulary small.
const NumBuckets = 48

// bucketsPerDecade controls numeric resolution (4 ⇒ each bucket spans 10^¼ ≈ 1.78×).
const bucketsPerDecade = 4

// Tokenizer maps between text and integer token ids.
type Tokenizer struct {
	idx   map[string]int
	words []string
}

// NumBucket returns the magnitude-bucket index in [0, NumBuckets) for a
// numeric value, or -1 for NaN/Inf (which NumToken renders as [UNK]). This is
// the exact discretization the transformer sees for every numeral, exported
// so stage-1 cascade scoring (internal/cascade) can key on the same view of a
// job that stage 2 classifies. Alloc-free.
//
//repro:hotpath
func NumBucket(v float64) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	a := math.Abs(v)
	if a < 1 {
		return 0
	}
	b := 1 + int(math.Log10(a)*bucketsPerDecade)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// NumToken returns the magnitude-bucket token for a numeric value.
// Negative values share the bucket of their magnitude with a sign prefix
// handled as a separate "-" token by Tokenize; v here is the absolute value.
func NumToken(v float64) string {
	b := NumBucket(v)
	if b < 0 {
		return "[UNK]"
	}
	return fmt.Sprintf("<num%d>", b)
}

// Tokenize splits text into word tokens: lowercased whitespace-delimited
// words, with trailing punctuation split off and numerals replaced by
// magnitude buckets.
func Tokenize(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	var out []string
	for _, f := range fields {
		out = appendWordTokens(out, f)
	}
	return out
}

func appendWordTokens(out []string, f string) []string {
	// Split leading/trailing punctuation into standalone tokens.
	for len(f) > 0 && isPunct(f[0]) {
		out = append(out, string(f[0]))
		f = f[1:]
	}
	var trail []string
	for len(f) > 0 && isPunct(f[len(f)-1]) {
		trail = append([]string{string(f[len(f)-1])}, trail...)
		f = f[:len(f)-1]
	}
	if len(f) > 0 {
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			if v < 0 {
				out = append(out, "-")
				v = -v
			}
			out = append(out, NumToken(v))
		} else {
			out = append(out, f)
		}
	}
	return append(out, trail...)
}

func isPunct(b byte) bool {
	switch b {
	case ',', '.', ':', ';', '?', '!', '(', ')', '"', '\'':
		return true
	}
	return false
}

// Build constructs a tokenizer whose vocabulary covers the given corpus plus
// all special and numeric-bucket tokens. Vocabulary order is deterministic:
// specials, numeric buckets, then corpus words sorted lexicographically.
func Build(corpus []string) *Tokenizer {
	seen := make(map[string]bool)
	for _, text := range corpus {
		for _, tok := range Tokenize(text) {
			seen[tok] = true
		}
	}
	var words []string
	words = append(words, specialTokens...)
	for b := 0; b < NumBuckets; b++ {
		words = append(words, fmt.Sprintf("<num%d>", b))
	}
	inVocab := make(map[string]bool, len(words))
	for _, w := range words {
		inVocab[w] = true
	}
	var rest []string
	for w := range seen {
		if !inVocab[w] {
			rest = append(rest, w)
		}
	}
	sort.Strings(rest)
	words = append(words, rest...)
	t := &Tokenizer{idx: make(map[string]int, len(words)), words: words}
	for i, w := range words {
		t.idx[w] = i
	}
	return t
}

// VocabSize returns the number of tokens in the vocabulary.
func (t *Tokenizer) VocabSize() int { return len(t.words) }

// ID returns the id of tok, or UNK if absent.
func (t *Tokenizer) ID(tok string) int {
	if id, ok := t.idx[tok]; ok {
		return id
	}
	return UNK
}

// Word returns the surface form of id.
func (t *Tokenizer) Word(id int) string {
	if id < 0 || id >= len(t.words) {
		return "[UNK]"
	}
	return t.words[id]
}

// Encode tokenizes text into ids. When wrap is true the sequence is framed
// as [CLS] ... [SEP] (encoder classification convention).
func (t *Tokenizer) Encode(text string, wrap bool) []int {
	toks := Tokenize(text)
	out := make([]int, 0, len(toks)+2)
	if wrap {
		out = append(out, CLS)
	}
	for _, tok := range toks {
		out = append(out, t.ID(tok))
	}
	if wrap {
		out = append(out, SEP)
	}
	return out
}

// Decode renders ids back to a space-joined string, skipping padding.
func (t *Tokenizer) Decode(ids []int) string {
	var sb strings.Builder
	for i, id := range ids {
		if id == PAD {
			continue
		}
		if i > 0 && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.Word(id))
	}
	return sb.String()
}

// Serialization: the vocabulary is the tokenizer's entire state, so the wire
// format is a magic header, a format version, and the word list in index
// order. Save and Load round-trip exactly — vocabulary order, special-token
// ids, numeric buckets, and unknown-token behavior are all preserved.
const (
	vocabMagic   = uint32(0x544F4B56) // "TOKV"
	vocabVersion = uint32(1)
	// maxWordBytes bounds a single serialized vocabulary word; anything
	// larger means the stream is not a tokenizer vocabulary.
	maxWordBytes = 1 << 16
	// maxVocabWords bounds the vocabulary size Load will allocate for.
	maxVocabWords = 1 << 24
)

// Save writes the vocabulary to w in a versioned binary format readable by
// Load.
func (t *Tokenizer) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{vocabMagic, vocabVersion, uint32(len(t.words))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, word := range t.words {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(word))); err != nil {
			return err
		}
		if _, err := bw.WriteString(word); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a vocabulary written by Save and reconstructs the tokenizer.
// The stream is validated: magic and version are checked, the special tokens
// and numeric buckets must occupy their fixed leading positions (models
// depend on those ids), and duplicate words are rejected.
func Load(r io.Reader) (*Tokenizer, error) {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("tokenizer: reading vocabulary magic: %w", err)
	}
	if magic != vocabMagic {
		return nil, fmt.Errorf("tokenizer: bad vocabulary magic %#x (want %#x)", magic, vocabMagic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("tokenizer: reading vocabulary version: %w", err)
	}
	if version != vocabVersion {
		return nil, fmt.Errorf("tokenizer: vocabulary format v%d; this build reads v%d", version, vocabVersion)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("tokenizer: reading vocabulary size: %w", err)
	}
	reserved := len(specialTokens) + NumBuckets
	if int(count) < reserved || count > maxVocabWords {
		return nil, fmt.Errorf("tokenizer: vocabulary of %d words is implausible (need at least %d, at most %d)",
			count, reserved, maxVocabWords)
	}
	// Preallocate from the declared count only up to a modest bound: count is
	// attacker-controlled until the words actually arrive, and trusting it
	// outright turns an 8-byte header into a multi-hundred-megabyte
	// allocation. Real vocabularies grow past the bound via append.
	prealloc := int(count)
	if prealloc > 4096 {
		prealloc = 4096
	}
	words := make([]string, 0, prealloc)
	idx := make(map[string]int, prealloc)
	for i := 0; i < int(count); i++ {
		var wordLen uint32
		if err := binary.Read(br, binary.LittleEndian, &wordLen); err != nil {
			return nil, fmt.Errorf("tokenizer: vocabulary truncated at word %d of %d: %w", i, count, err)
		}
		if wordLen > maxWordBytes {
			return nil, fmt.Errorf("tokenizer: word %d has length %d (corrupt vocabulary?)", i, wordLen)
		}
		buf := make([]byte, wordLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("tokenizer: vocabulary truncated reading word %d of %d: %w", i, count, err)
		}
		word := string(buf)
		if _, dup := idx[word]; dup {
			return nil, fmt.Errorf("tokenizer: duplicate vocabulary word %q at index %d", word, i)
		}
		idx[word] = i
		words = append(words, word)
	}
	for i, want := range specialTokens {
		if words[i] != want {
			return nil, fmt.Errorf("tokenizer: vocabulary index %d is %q, want special token %q", i, words[i], want)
		}
	}
	for b := 0; b < NumBuckets; b++ {
		i := len(specialTokens) + b
		if want := fmt.Sprintf("<num%d>", b); words[i] != want {
			return nil, fmt.Errorf("tokenizer: vocabulary index %d is %q, want numeric bucket %q", i, words[i], want)
		}
	}
	return &Tokenizer{idx: idx, words: words}, nil
}

// UnknownRate reports the fraction of tokens in text that map to UNK —
// useful for verifying that a vocabulary built on one workflow covers
// another (the transfer-learning setting).
func (t *Tokenizer) UnknownRate(text string) float64 {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return 0
	}
	unk := 0
	for _, tok := range toks {
		if t.ID(tok) == UNK {
			unk++
		}
	}
	return float64(unk) / float64(len(toks))
}
