package tokenizer

import (
	"bytes"
	"testing"
)

// FuzzLoad drives the vocabulary reader with arbitrary bytes. Accepted
// vocabularies must round-trip (save, reload, same vocabulary) and must
// tokenize without panicking — the properties LoadDetector relies on when it
// embeds a vocabulary section inside a model artifact.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := Build([]string{"alpha beta gamma", "delta 42 epsilon", "GET /v1/detect 200"}).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2]) // truncated mid-word
	f.Add([]byte{})
	f.Add([]byte("TOKV"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tok.Save(&out); err != nil {
			t.Fatalf("loaded vocabulary cannot be re-saved: %v", err)
		}
		tok2, err := Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-saved vocabulary does not reload: %v", err)
		}
		if tok2.VocabSize() != tok.VocabSize() {
			t.Fatalf("round trip changed vocabulary size: %d -> %d", tok.VocabSize(), tok2.VocabSize())
		}
		ids := tok.Encode("alpha 42 unseen-token", true)
		if tok.Decode(ids) == "" {
			t.Fatal("loaded vocabulary decodes a wrapped sentence to nothing")
		}
	})
}
