package tokenizer

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeWordsAndNumbers(t *testing.T) {
	toks := Tokenize("wms_delay is 6.0 queue_delay is 22.0")
	if len(toks) != 6 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0] != "wms_delay" || toks[1] != "is" {
		t.Fatalf("tokens = %v", toks)
	}
	if !strings.HasPrefix(toks[2], "<num") {
		t.Fatalf("number not bucketed: %v", toks[2])
	}
}

func TestTokenizePunctuation(t *testing.T) {
	toks := Tokenize("runtime is 5.0, abnormal.")
	want := []string{"runtime", "is", "<num8>", ",", "abnormal", "."}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if i == 2 {
			if !strings.HasPrefix(toks[2], "<num") {
				t.Fatalf("numeral token = %v", toks[2])
			}
			continue
		}
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
}

func TestTokenizeNegativeNumber(t *testing.T) {
	toks := Tokenize("delta is -3.5")
	if toks[2] != "-" || !strings.HasPrefix(toks[3], "<num") {
		t.Fatalf("negative tokens = %v", toks)
	}
}

func TestNumTokenMonotone(t *testing.T) {
	// Magnitude buckets must be monotone in |v|.
	prev := -1
	for _, v := range []float64{0, 0.5, 1, 3, 10, 30, 100, 1000, 1e6, 1e12} {
		tok := NumToken(v)
		var b int
		if _, err := sscanfBucket(tok, &b); err != nil {
			t.Fatalf("bad bucket token %q", tok)
		}
		if b < prev {
			t.Fatalf("bucket for %v (%d) below previous (%d)", v, b, prev)
		}
		prev = b
	}
}

func sscanfBucket(tok string, b *int) (int, error) {
	var n int
	_, err := fmt.Sscanf(tok, "<num%d>", &n)
	*b = n
	return n, err
}

func TestNumTokenDistinguishesAnomalyScale(t *testing.T) {
	// The CPU anomaly roughly doubles runtimes; the buckets must separate
	// e.g. 970 from 1775 (Fig 13's normal vs abnormal runtime means).
	if NumToken(970) == NumToken(1775) {
		t.Fatal("bucket resolution too coarse to detect 2x anomalies")
	}
}

func TestNumTokenSpecialValues(t *testing.T) {
	if NumToken(math.NaN()) != "[UNK]" {
		t.Fatal("NaN must map to UNK")
	}
	if NumToken(math.Inf(1)) != "[UNK]" {
		t.Fatal("Inf must map to UNK")
	}
	if NumToken(0) != "<num0>" {
		t.Fatalf("NumToken(0) = %v", NumToken(0))
	}
	// Huge values clamp to the top bucket rather than overflowing.
	if NumToken(1e300) != NumToken(1e299) {
		t.Fatal("huge values must clamp to the top bucket")
	}
}

func TestBuildVocabDeterministic(t *testing.T) {
	corpus := []string{"runtime is 5.0", "cpu_time is 2.0 , normal"}
	t1 := Build(corpus)
	t2 := Build([]string{corpus[1], corpus[0]}) // order-insensitive
	if t1.VocabSize() != t2.VocabSize() {
		t.Fatal("vocab size depends on corpus order")
	}
	for i := 0; i < t1.VocabSize(); i++ {
		if t1.Word(i) != t2.Word(i) {
			t.Fatal("vocab order depends on corpus order")
		}
	}
}

func TestSpecialTokenIDs(t *testing.T) {
	tk := Build([]string{"hello"})
	if tk.ID("[PAD]") != PAD || tk.ID("[CLS]") != CLS || tk.ID("[MASK]") != MASK {
		t.Fatal("special token ids shifted")
	}
}

func TestEncodeWrap(t *testing.T) {
	tk := Build([]string{"runtime is 5.0"})
	ids := tk.Encode("runtime is 5.0", true)
	if ids[0] != CLS || ids[len(ids)-1] != SEP {
		t.Fatalf("wrapped encode = %v", ids)
	}
	plain := tk.Encode("runtime is 5.0", false)
	if len(plain) != len(ids)-2 {
		t.Fatal("unwrapped encode must not add frame tokens")
	}
}

func TestEncodeUnknown(t *testing.T) {
	tk := Build([]string{"runtime"})
	ids := tk.Encode("zzz_unseen", false)
	if len(ids) != 1 || ids[0] != UNK {
		t.Fatalf("unknown word ids = %v", ids)
	}
}

func TestEncodeEmptyString(t *testing.T) {
	tk := Build([]string{"a"})
	ids := tk.Encode("", true)
	// Empty sentence becomes [CLS] [SEP] — the Fig 9 debiasing probe.
	if len(ids) != 2 || ids[0] != CLS || ids[1] != SEP {
		t.Fatalf("empty encode = %v", ids)
	}
}

func TestDecodeRoundTripWords(t *testing.T) {
	tk := Build([]string{"queue_delay is high , abnormal"})
	ids := tk.Encode("queue_delay is high", false)
	got := tk.Decode(ids)
	if got != "queue_delay is high" {
		t.Fatalf("decode = %q", got)
	}
}

func TestDecodeSkipsPadding(t *testing.T) {
	tk := Build([]string{"a b"})
	ids := append(tk.Encode("a b", false), PAD, PAD)
	if got := tk.Decode(ids); got != "a b" {
		t.Fatalf("decode with padding = %q", got)
	}
}

func TestUnknownRate(t *testing.T) {
	tk := Build([]string{"runtime is 5.0"})
	if r := tk.UnknownRate("runtime is 7.0"); r != 0 {
		t.Fatalf("in-vocab unknown rate = %v", r)
	}
	if r := tk.UnknownRate("zebra quagga"); r != 1 {
		t.Fatalf("out-of-vocab unknown rate = %v", r)
	}
	if r := tk.UnknownRate(""); r != 0 {
		t.Fatalf("empty unknown rate = %v", r)
	}
}

// Property: Encode never produces out-of-vocab ids.
func TestEncodeIDsInRangeProperty(t *testing.T) {
	tk := Build([]string{"wms_delay queue_delay runtime is , normal abnormal"})
	f := func(a, b uint8, v float64) bool {
		text := "wms_delay is " + fmtFloat(v) + " , normal"
		for _, id := range tk.Encode(text, true) {
			if id < 0 || id >= tk.VocabSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func fmtFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

// TestSaveLoadRoundTrip pins the vocabulary wire format: a loaded tokenizer
// must reproduce vocabulary order, special-token ids, numeric buckets, and
// unknown-token behavior exactly.
func TestSaveLoadRoundTrip(t *testing.T) {
	tk := Build([]string{
		"wms_delay is 6.0 queue_delay is 22.0 runtime is 5.0 , normal",
		"stage_in_bytes is 30000000.0 abnormal .",
	})
	var buf bytes.Buffer
	if err := tk.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.VocabSize() != tk.VocabSize() {
		t.Fatalf("vocab size %d, want %d", got.VocabSize(), tk.VocabSize())
	}
	for id := 0; id < tk.VocabSize(); id++ {
		if got.Word(id) != tk.Word(id) {
			t.Fatalf("word %d = %q, want %q (vocabulary order not preserved)", id, got.Word(id), tk.Word(id))
		}
	}
	for i, tok := range []string{"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[BOS]", "[EOS]"} {
		if got.ID(tok) != i {
			t.Fatalf("special %q = id %d, want %d", tok, got.ID(tok), i)
		}
	}
	// Unknown-token behavior: an out-of-vocab word must map to UNK on both.
	if got.ID("zebra") != UNK || tk.ID("zebra") != UNK {
		t.Fatal("out-of-vocab word did not map to UNK")
	}
	// Encode must agree on wrapped and unwrapped forms.
	for _, text := range []string{"wms_delay is 6.0 , normal", "zebra quagga 1e9", ""} {
		for _, wrap := range []bool{false, true} {
			a, b := tk.Encode(text, wrap), got.Encode(text, wrap)
			if len(a) != len(b) {
				t.Fatalf("Encode(%q, %v) lengths differ: %d vs %d", text, wrap, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Encode(%q, %v)[%d] = %d, want %d", text, wrap, i, b[i], a[i])
				}
			}
		}
	}
}

// TestLoadRejectsCorruptVocabulary exercises the loud-failure paths: bad
// magic, wrong version, truncation, displaced special tokens, duplicates.
func TestLoadRejectsCorruptVocabulary(t *testing.T) {
	tk := Build([]string{"runtime is 5.0"})
	var buf bytes.Buffer
	if err := tk.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte{9, 9, 9, 9, 0, 0, 0, 0})); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic error = %v", err)
	}
	verBumped := append([]byte(nil), good...)
	verBumped[4] = 99
	if _, err := Load(bytes.NewReader(verBumped)); err == nil || !strings.Contains(err.Error(), "v99") {
		t.Fatalf("version error = %v", err)
	}
	if _, err := Load(bytes.NewReader(good[:len(good)-3])); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error = %v", err)
	}
	if _, err := Load(bytes.NewReader(good[:6])); err == nil {
		t.Fatal("expected error on truncated header")
	}
}
