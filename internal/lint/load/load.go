// Package load turns `go list` package patterns into parsed, fully
// type-checked packages for the reprolint analyzers.
//
// It is the offline, stdlib-only stand-in for golang.org/x/tools/go/packages:
// one `go list -export -deps -json` invocation yields every target package's
// source file list plus compiled export data for all dependencies (stdlib
// included), so each target is type-checked from source against its deps'
// export data — the same information a go/packages LoadAllSyntax pass would
// provide, without any network or third-party module.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path (e.g. repro/internal/tensor).
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in GoFiles order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load lists patterns with the go tool and returns every matched (non-dep)
// package parsed and type-checked. Dependencies are imported from compiler
// export data, so Load works offline and never re-checks the whole program.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && lp.Name != "" {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		p, err := typecheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` over patterns and decodes the
// package stream.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

// typecheck parses lp's files and type-checks them against dependency export
// data.
func typecheck(lp *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: ExportImporter(fset, exports),
		Error:    func(error) {}, // collect all; first error returned below
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// StdExports returns the export-data file for every standard-library
// package, from one `go list -export -deps -json std` call. The linttest
// harness uses it so fixture packages can import the real stdlib.
func StdExports() (map[string]string, error) {
	listed, err := goList([]string{"std"})
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves import paths through
// the gc export data files in exports (import path -> file), as produced by
// `go list -export`.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
