// Package lint is reprolint: the repository's static-analysis suite. It
// turns the invariants that earlier PRs could only state in prose and spot
// tests into compile-time diagnostics:
//
//   - determinism: declared-deterministic packages draw no wall-clock time,
//     no math/rand, and never let map iteration order reach an output
//     (docs/SCENARIOS.md).
//   - hotalloc: functions on the zero-allocation hot path (any function
//     taking a *tensor.Workspace, or marked //repro:hotpath) contain no
//     allocating constructs (docs/PERFORMANCE.md).
//   - locksafe: no blocking operation is reachable while a sync.Mutex or
//     RWMutex is held (docs/RELIABILITY.md).
//   - ctxflow: request paths in internal/core never manufacture root
//     contexts, and HTTP handlers thread r.Context() into detection calls.
//
// See docs/STATIC_ANALYSIS.md for the catalog, the suppression policy, and
// how to add an analyzer. The cmd/reprolint binary (make lint) runs the
// suite over ./....
package lint

import (
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the reprolint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		HotallocAnalyzer,
		LocksafeAnalyzer,
		CtxflowAnalyzer,
	}
}

// Run loads patterns and applies analyzers to every matched package,
// returning the surviving diagnostics (suppressions applied) sorted by
// position. A nil analyzers slice means the full suite.
func Run(analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, error) {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	pkgs, err := load.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sortDiagnostics(out)
	return out, nil
}

// RunPackage applies analyzers to one loaded package and filters the result
// through the package's //lint:ignore directives.
func RunPackage(analyzers []*analysis.Analyzer, pkg *load.Package) ([]analysis.Diagnostic, error) {
	diags, err := analysis.Run(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		return nil, err
	}
	return ApplyIgnores(pkg.Fset, pkg.Files, diags), nil
}

func sortDiagnostics(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
