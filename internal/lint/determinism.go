package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// DeterminismAnalyzer enforces the bit-reproducibility contract of
// docs/SCENARIOS.md on the declared-deterministic packages: every scenario,
// fault campaign, benchmark stream, and retry schedule must be a pure
// function of its seed.
//
// In those packages it reports:
//   - any use of time.Now, time.Since, or time.Until (wall-clock reads;
//     inject a clock or take timestamps as arguments),
//   - any import of math/rand or math/rand/v2 (all randomness flows through
//     tensor.RNG so streams are splittable and seeded),
//   - any `range` over a map whose body appends to a slice declared outside
//     the loop, or writes output, with no later sort of that slice in the
//     same function (map iteration order leaks into results — the exact bug
//     class the scenario golden hashes catch only dynamically).
//
// A package opts in by being listed in deterministicPkgs or by carrying a
// `//repro:deterministic` comment in any file.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, math/rand, and map-order-dependent output in declared-deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs are the packages whose outputs are pinned by golden
// hashes or seed-replay tests (docs/SCENARIOS.md, docs/RELIABILITY.md).
var deterministicPkgs = map[string]bool{
	"repro/internal/scenario":   true,
	"repro/internal/faults":     true,
	"repro/internal/flowbench":  true,
	"repro/internal/tensor":     true,
	"repro/internal/resilience": true,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *analysis.Pass) error {
	if !pkgDeclaredBy(pass, deterministicPkgs, "//repro:deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		// Imports of math/rand: the repo's contract is that every random
		// draw flows through a seeded, splittable tensor.RNG.
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in declared-deterministic package; draw randomness from a seeded tensor.RNG instead", path)
			}
		}
		// Wall-clock reads, including time.Now used as a function value.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || funcPkgPath(fn) != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a declared-deterministic package; inject a clock or pass timestamps in", fn.Name())
			return true
		})
		// Map-order-dependent output.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrder(pass, fd)
		}
	}
	return nil
}

// orderedWriters are methods/functions whose invocation inside a map-range
// body emits output in iteration order.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// checkMapOrder flags range-over-map loops in fd whose iteration order can
// reach an output: appends to an outer slice that is never subsequently
// sorted, or direct writes from inside the loop body.
func checkMapOrder(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}

		// Writes inside the body emit in map order no matter what happens
		// later.
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			if orderedWriteMethods[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil {
				pass.Reportf(call.Pos(), "write inside range over map emits in nondeterministic iteration order; collect and sort first")
				return true
			}
			if funcPkgPath(fn) == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s inside range over map emits in nondeterministic iteration order; collect and sort first", fn.Name())
			}
			return true
		})

		// Appends to outer slices must be followed by a sort of that slice
		// somewhere later in the function.
		for _, target := range outerAppendTargets(pass, rs) {
			if !sortedAfter(pass, fd, rs, target) {
				pass.Reportf(rs.Pos(), "range over map appends to %q in nondeterministic iteration order with no later sort; sort %q before it is used", target.Name(), target.Name())
			}
		}
		return true
	})
}

// outerAppendTargets returns the objects of variables declared outside rs
// that the loop body appends to.
func outerAppendTargets(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	var targets []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(lhs)
			// Declared before the loop means the slice outlives it.
			if obj != nil && obj.Pos() < rs.Pos() && !seen[obj] {
				seen[obj] = true
				targets = append(targets, obj)
			}
		}
		return true
	})
	return targets
}

// sortedAfter reports whether fd contains, after the range statement, a call
// into sort or slices that mentions target — the sanctioned
// collect-then-sort pattern.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		if p := funcPkgPath(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, target) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
