package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestSuppressionBudget pins the number of //lint:ignore directives in the
// repository. Every suppression is a deliberate, justified exception to an
// invariant the analyzers otherwise enforce; this test makes adding one a
// reviewed act — the budget only moves together with a diff that shows the
// new directive and its reason.
//
// If this fails after you added a suppression: first try to fix the finding
// instead. If the exception is genuinely justified (see
// docs/STATIC_ANALYSIS.md for the policy), update the budget here in the
// same commit.
func TestSuppressionBudget(t *testing.T) {
	const budget = 22
	root := filepath.Join("..", "..")
	perAnalyzer := make(map[string]int)
	var sites []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "bin":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := directiveRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				sites = append(sites, fmt.Sprintf("%s:%d: %s", path, pos.Line, m[1]))
				for _, name := range strings.Split(m[1], ",") {
					perAnalyzer[name]++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != budget {
		sort.Strings(sites)
		t.Errorf("found %d //lint:ignore directives, budget is %d; per analyzer %v\nsites:\n  %s",
			len(sites), budget, perAnalyzer, strings.Join(sites, "\n  "))
	}
}
