package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Suppression directives.
//
// A finding is silenced with a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line or on its own line directly above it.
// The reason is mandatory: a directive without one is itself a diagnostic,
// and so is a directive that suppresses nothing (so stale suppressions rot
// out of the tree instead of hiding future findings). The total number of
// directives in the repository is pinned by TestSuppressionBudget in this
// package — adding one is a deliberate, reviewed act.

// ApplyIgnores filters diags through the //lint:ignore directives found in
// files: suppressed findings are dropped, and malformed or unused directives
// are appended as diagnostics of the pseudo-analyzer "reprolint". It is the
// directive half of RunPackage, exported so the linttest harness exercises
// the exact pipeline the reprolint binary runs.
func ApplyIgnores(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) []analysis.Diagnostic {
	var malformed []analysis.Diagnostic
	dirs := parseDirectives(fset, files, func(d analysis.Diagnostic) {
		malformed = append(malformed, d)
	})
	out := applyDirectives(diags, dirs)
	return append(out, malformed...)
}

// directiveRe matches the directive after the leading "//". Analyzer list
// and reason are capture groups.
var directiveRe = regexp.MustCompile(`^lint:ignore\s+([a-z0-9_,-]+)(?:\s+(.*))?$`)

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos       token.Position
	analyzers map[string]bool
	reason    string
	// lines the directive covers: its own line and, for a directive that
	// stands alone, the following line.
	lines [2]int
	used  bool
}

// parseDirectives extracts every //lint:ignore directive from files.
// Malformed directives (no reason) are reported immediately via report.
func parseDirectives(fset *token.FileSet, files []*ast.File, report func(analysis.Diagnostic)) []*directive {
	var dirs []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := directiveRe.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					report(analysis.Diagnostic{
						Pos:      pos,
						Analyzer: "reprolint",
						Message:  "lint:ignore directive needs a reason: //lint:ignore <analyzer> <why this is safe>",
					})
					continue
				}
				d := &directive{
					pos:       pos,
					analyzers: make(map[string]bool),
					reason:    strings.TrimSpace(m[2]),
					lines:     [2]int{pos.Line, pos.Line + 1},
				}
				for _, name := range strings.Split(m[1], ",") {
					d.analyzers[name] = true
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// applyDirectives filters diags through dirs: a diagnostic whose position
// line is covered by a directive naming its analyzer is dropped (and the
// directive marked used). Unused directives are appended as diagnostics.
func applyDirectives(diags []analysis.Diagnostic, dirs []*directive) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.pos.Filename != d.Pos.Filename || !dir.analyzers[d.Analyzer] {
				continue
			}
			if d.Pos.Line == dir.lines[0] || d.Pos.Line == dir.lines[1] {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			names := make([]string, 0, len(dir.analyzers))
			for n := range dir.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			out = append(out, analysis.Diagnostic{
				Pos:      dir.pos,
				Analyzer: "reprolint",
				Message:  "unused lint:ignore directive for " + strings.Join(names, ",") + " (nothing suppressed; delete it)",
			})
		}
	}
	return out
}
