package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// calleeFunc resolves the function or method a call expression invokes, or
// nil for builtins, type conversions, and calls through function values.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring fn ("" for
// builtins and universe-scope functions).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// fileHasDirective reports whether any comment in f is exactly the given
// //-directive (e.g. "//repro:deterministic").
func fileHasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directive {
				return true
			}
		}
	}
	return false
}

// declHasDirective reports whether a declaration's doc comment contains the
// given //-directive on a line of its own.
func declHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// pkgDeclaredBy reports whether the pass's package is in paths or any of its
// files carries the directive — the two ways a package opts into a scoped
// analyzer.
func pkgDeclaredBy(pass *analysis.Pass, paths map[string]bool, directive string) bool {
	if paths[pass.Pkg.Path()] {
		return true
	}
	for _, f := range pass.Files {
		if fileHasDirective(f, directive) {
			return true
		}
	}
	return false
}

// isNamedType reports whether t (after pointer indirection if deref) is the
// named type pkgName.typeName, matching the declaring package by name so
// test fixtures can stand in for the real package.
func isNamedType(t types.Type, deref bool, pkgName, typeName string) bool {
	if deref {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// mentionsObject reports whether the expression tree rooted at e contains an
// identifier resolving to obj.
func mentionsObject(pass *analysis.Pass, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
