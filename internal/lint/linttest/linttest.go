// Package linttest is the repo's offline stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture package
// from a testdata/src tree, runs one reprolint analyzer through the full
// pipeline — including //lint:ignore suppression — and checks the reported
// diagnostics against `// want "regex"` comments in the fixture source.
//
// Fixture layout mirrors analysistest's GOPATH convention:
//
//	testdata/src/<pkg>/...go        the package under test
//	testdata/src/<dep>/...go        fake local dependencies (e.g. a stub
//	                                tensor package defining Workspace)
//
// Imports resolve first against testdata/src (so fixtures can stand in for
// repo packages), then against the real standard library via compiler
// export data, so fixtures may import time, sync, context, net/http, ...
// freely.
//
// Expectations: a comment `// want "re"` (several per line allowed) asserts
// that the analyzer reports, on that line, one diagnostic per pattern whose
// message matches the regexp. Lines without want comments must produce no
// diagnostics. Suppressed findings count as absent — which is how the
// suppression fixtures assert the escape hatch works.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads testdata/src/<pkg> and checks analyzer a's diagnostics against
// the fixture's want comments. testdata is the path to the testdata
// directory (usually "testdata" relative to the test).
func Run(t *testing.T, testdata, pkg string, a *analysis.Analyzer) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	imp := newFixtureImporter(srcRoot, fset)
	files, tpkg, info, err := imp.checkDir(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, files, tpkg, info)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, pkg, err)
	}
	diags = lint.ApplyIgnores(fset, files, diags)

	checkWants(t, fset, files, diags)
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRe matches both comment forms: `// want "re"` and, for lines whose
// trailing comment slot is taken by a lint:ignore directive under test,
// `/* want "re" */`.
var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)$`)

// checkWants matches diagnostics against // want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// splitQuoted extracts the double-quoted strings from a want comment tail.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		rest := s[i:]
		// Find the end of this Go-quoted string by trying successively
		// longer prefixes.
		for j := 2; j <= len(rest); j++ {
			if q, err := strconv.Unquote(rest[:j]); err == nil {
				out = append(out, q)
				s = rest[j:]
				break
			}
			if j == len(rest) {
				return out
			}
		}
	}
}

// fixtureImporter resolves fixture-local packages from testdata/src and
// everything else from the real standard library's export data.
type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	memo    map[string]*types.Package
	std     types.Importer
	stdErr  error
	stdOnce bool
}

func newFixtureImporter(srcRoot string, fset *token.FileSet) *fixtureImporter {
	return &fixtureImporter{srcRoot: srcRoot, fset: fset, memo: make(map[string]*types.Package)}
}

// Import implements types.Importer.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.memo[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(im.srcRoot, path); isDir(dir) {
		_, tpkg, _, err := im.checkDir(path)
		if err != nil {
			return nil, err
		}
		return tpkg, nil
	}
	std, err := im.stdImporter()
	if err != nil {
		return nil, err
	}
	return std.Import(path)
}

// checkDir parses and type-checks the fixture package in srcRoot/path.
func (im *fixtureImporter) checkDir(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(im.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: im, Error: func(error) {}}
	tpkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	im.memo[path] = tpkg
	return files, tpkg, info, nil
}

// stdImporter lazily builds the export-data importer for the standard
// library: one `go list -export -deps -json std` enumerates export files for
// every stdlib package.
func (im *fixtureImporter) stdImporter() (types.Importer, error) {
	if im.stdOnce {
		return im.std, im.stdErr
	}
	im.stdOnce = true
	exports, err := load.StdExports()
	if err != nil {
		im.stdErr = err
		return nil, err
	}
	im.std = load.ExportImporter(im.fset, exports)
	return im.std, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
