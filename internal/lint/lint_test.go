// Package lint_test runs every reprolint analyzer against its fixture
// package under testdata/src — positive findings, negative shapes, and the
// //lint:ignore escape hatch — and smoke-tests the assembled suite through
// the same loader the reprolint binary uses.
package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminismFixture(t *testing.T) {
	linttest.Run(t, "testdata", "determ", lint.DeterminismAnalyzer)
}

func TestHotallocFixture(t *testing.T) {
	linttest.Run(t, "testdata", "hotpath", lint.HotallocAnalyzer)
}

// TestHotallocWorkspaceExempt runs hotalloc over the fake arena itself: its
// methods take *Workspace parameters but are the one place amortized growth
// belongs, so the fixture asserts zero diagnostics.
func TestHotallocWorkspaceExempt(t *testing.T) {
	linttest.Run(t, "testdata", "tensor", lint.HotallocAnalyzer)
}

func TestLocksafeFixture(t *testing.T) {
	linttest.Run(t, "testdata", "locks", lint.LocksafeAnalyzer)
}

func TestCtxflowFixture(t *testing.T) {
	linttest.Run(t, "testdata", "reqpath", lint.CtxflowAnalyzer)
}

// TestSuiteClean runs the full suite end-to-end (go list loader, export-data
// type-checking, directive filtering) over two declared-deterministic
// packages and requires a clean bill.
func TestSuiteClean(t *testing.T) {
	diags, err := lint.Run(nil, "repro/internal/faults", "repro/internal/resilience")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
