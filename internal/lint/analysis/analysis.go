// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with a
// Run function over one type-checked package (a Pass), reporting
// position-anchored Diagnostics.
//
// The real x/tools module cannot be vendored here (the build environment is
// offline and the repo is dependency-free by policy), so this package mirrors
// the parts of its surface the reprolint suite needs on the standard
// library's go/ast and go/types alone. If the repo ever grows a vendored
// x/tools, the analyzers in internal/lint port mechanically: the Pass fields
// and Reportf signature match.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore <name> directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant enforced, and where
	// it applies.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the unit of work handed to an Analyzer: one type-checked package
// plus a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and object resolution for every expression in
	// Files (Types, Defs, Uses, Selections, Implicits populated).
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// Run applies each analyzer to the package described by (fset, files, pkg,
// info) and returns the combined diagnostics.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
		out = append(out, pass.diagnostics...)
	}
	return out, nil
}
