package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// LocksafeAnalyzer enforces the non-blocking-under-lock discipline of
// docs/RELIABILITY.md across every package: while a sync.Mutex or
// sync.RWMutex is held, nothing on the path may wait on the outside world.
// The SSE alert bus is the canonical positive example — it publishes under
// its subscriber lock only through a select with a default, dropping rather
// than stalling; this analyzer makes that shape the law.
//
// While a lock is held it reports:
//   - channel sends and receives (and selects with no default clause),
//   - time.Sleep,
//   - sync.WaitGroup.Wait and sync.Cond.Wait,
//   - known-blocking I/O calls: net dials/listens/reads, net/http client
//     requests and response writes, os file open/read/write, io.Copy and
//     friends, bufio flush/scan, os/exec runs.
//
// The tracking is lexical and intraprocedural: Lock() opens a region,
// Unlock() closes it, `defer Unlock()` holds it to the end of the function,
// and branches are analyzed with a copy of the held set. Calls into other
// functions that themselves block, and goroutine or deferred closures, are
// out of scope (the escape hatch plus the race-enabled e2e cover those).
var LocksafeAnalyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "forbid blocking operations (channel ops without default, sleeps, I/O) while a sync mutex is held",
	Run:  runLocksafe,
}

// blockingCalls maps package path -> function/method name for calls that can
// block on the scheduler, disk, or network.
var blockingCalls = map[string]map[string]bool{
	"time": {"Sleep": true},
	"sync": {"Wait": true}, // WaitGroup.Wait, Cond.Wait
	"net": {
		"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
		"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenPacket": true,
		"LookupHost": true, "LookupAddr": true, "LookupIP": true,
		"Accept": true, "Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	},
	"net/http": {
		"Get": true, "Post": true, "PostForm": true, "Head": true,
		"Do": true, "Write": true, "ReadRequest": true, "ReadResponse": true,
	},
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "ReadDir": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "Mkdir": true, "MkdirAll": true,
		"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
		"WriteString": true, "Sync": true,
	},
	"io":      {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "ReadFull": true},
	"bufio":   {"Flush": true, "Scan": true, "ReadString": true, "ReadBytes": true, "ReadLine": true},
	"os/exec": {"Run": true, "Output": true, "CombinedOutput": true, "Wait": true, "Start": true},
}

func runLocksafe(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, held: make(map[string]token.Pos)}
			w.stmt(fd.Body)
		}
	}
	return nil
}

// lockWalker tracks which mutexes are held at each statement, lexically.
type lockWalker struct {
	pass *analysis.Pass
	// held maps a mutex expression (rendered source, e.g. "t.mu") to the
	// position of the Lock call that acquired it.
	held map[string]token.Pos
}

// fork returns a walker with a copy of the held set, for analyzing branches
// independently.
func (w *lockWalker) fork() *lockWalker {
	h := make(map[string]token.Pos, len(w.held))
	for k, v := range w.held {
		h[k] = v
	}
	return &lockWalker{pass: w.pass, held: h}
}

// anyHeld returns one held mutex's name and lock position (map order does
// not matter for correctness: any held lock justifies the diagnostic).
func (w *lockWalker) anyHeld() (string, token.Pos) {
	name, pos := "", token.NoPos
	for k, v := range w.held {
		if name == "" || k < name {
			name, pos = k, v
		}
	}
	return name, pos
}

func (w *lockWalker) reportBlocking(pos token.Pos, what string) {
	name, lockPos := w.anyHeld()
	w.pass.Reportf(pos, "%s while %q is held (locked at %s); release the lock or make the operation non-blocking",
		what, name, w.pass.Fset.Position(lockPos))
}

// stmt walks one statement, updating lock state and flagging blocking
// operations when any mutex is held. Branching statements analyze each
// branch with its own copy of the state and merge the exits: a lock held on
// any live path out of the branch stays held (conservative), and a branch
// that terminates (return, panic, break/continue) contributes nothing — so
// the common "unlock in every select clause / early-return arm" shapes
// resolve precisely.
func (w *lockWalker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range st.List {
			w.stmt(sub)
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if mu, op := w.mutexOp(call); op != "" {
				w.transition(mu, op, call.Pos())
				return
			}
		}
		w.expr(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() holds the lock to the end of the function: keep
		// the region open and keep checking. Other deferred calls run at
		// return; their bodies are out of lexical scope.
		return
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the caller's locks.
		return
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.SendStmt:
		if len(w.held) > 0 {
			w.reportBlocking(st.Pos(), "blocking channel send")
		}
		w.expr(st.Value)
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		body := w.fork()
		body.stmt(st.Body)
		branches := []*branchExit{{body.held, terminates(st.Body)}}
		if st.Else != nil {
			els := w.fork()
			els.stmt(st.Else)
			branches = append(branches, &branchExit{els.held, terminates(st.Else)})
		} else {
			// No else: the fall-through path keeps the entry state.
			branches = append(branches, &branchExit{w.held, false})
		}
		w.held = mergeExits(branches)
	case *ast.ForStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		body := w.fork()
		body.stmt(st.Body)
		// The loop may run zero times; a lock leaked by the body also
		// survives. Merge both.
		w.held = mergeExits([]*branchExit{{w.held, false}, {body.held, false}})
	case *ast.RangeStmt:
		w.expr(st.X)
		body := w.fork()
		body.stmt(st.Body)
		w.held = mergeExits([]*branchExit{{w.held, false}, {body.held, false}})
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		w.expr(st.Tag)
		w.held = w.caseExits(st.Body, true)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.held = w.caseExits(st.Body, true)
	case *ast.SelectStmt:
		w.selectStmt(st)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.IncDecStmt:
		w.expr(st.X)
	}
}

// branchExit is one branch's lock state on exit.
type branchExit struct {
	held       map[string]token.Pos
	terminated bool
}

// mergeExits unions the held sets of every non-terminating branch.
func mergeExits(branches []*branchExit) map[string]token.Pos {
	merged := make(map[string]token.Pos)
	for _, b := range branches {
		if b.terminated {
			continue
		}
		for k, v := range b.held {
			merged[k] = v
		}
	}
	return merged
}

// caseExits walks each case clause of a switch body with a forked state and
// merges the exits. When includeEntry is true (no guarantee a case runs),
// the entry state is merged too.
func (w *lockWalker) caseExits(body *ast.BlockStmt, includeEntry bool) map[string]token.Pos {
	branches := []*branchExit{}
	if includeEntry {
		branches = append(branches, &branchExit{w.held, false})
	}
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		f := w.fork()
		for _, sub := range cc.Body {
			f.stmt(sub)
		}
		branches = append(branches, &branchExit{f.held, terminatesList(cc.Body)})
	}
	return mergeExits(branches)
}

// selectStmt handles the one sanctioned non-blocking shape: a select with a
// default clause never blocks, so its comm operations are exempt. A select
// without default parks the goroutine and is flagged as a whole. Exactly one
// clause runs, so the exit state is the merge of the clause exits alone.
func (w *lockWalker) selectStmt(st *ast.SelectStmt) {
	hasDefault := false
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && len(w.held) > 0 {
		w.reportBlocking(st.Pos(), "blocking select (no default clause)")
	}
	var branches []*branchExit
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		f := w.fork()
		// The comm op itself is non-blocking iff the select has a default;
		// either way it has already been accounted for above, so skip the
		// comm statement and walk only the clause body.
		for _, sub := range cc.Body {
			f.stmt(sub)
		}
		branches = append(branches, &branchExit{f.held, terminatesList(cc.Body)})
	}
	if len(branches) > 0 {
		w.held = mergeExits(branches)
	}
}

// terminates reports whether control cannot flow past s — a conservative
// subset of the spec's terminating statements, enough to recognize the
// unlock-and-return / unlock-and-panic arms that end lock regions.
func terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminatesList(st.List)
	case *ast.IfStmt:
		return st.Else != nil && terminates(st.Body) && terminates(st.Else)
	case *ast.LabeledStmt:
		return terminates(st.Stmt)
	}
	return false
}

func terminatesList(list []ast.Stmt) bool {
	return len(list) > 0 && terminates(list[len(list)-1])
}

// expr flags blocking operations in an expression tree: channel receives and
// calls from the blocking table. Function literals are skipped (they execute
// elsewhere).
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(w.held) > 0 {
				w.reportBlocking(x.Pos(), "blocking channel receive")
			}
		case *ast.CallExpr:
			if len(w.held) == 0 {
				return true
			}
			fn := calleeFunc(w.pass, x)
			if fn == nil {
				return true
			}
			if names, ok := blockingCalls[funcPkgPath(fn)]; ok && names[fn.Name()] {
				w.reportBlocking(x.Pos(), "call to "+fn.Pkg().Name()+"."+fn.Name()+" can block")
			}
		}
		return true
	})
}

// mutexOp reports whether call is a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver expression rendered as
// source and the method name.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || funcPkgPath(fn) != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// transition applies a mutex operation to the held set.
func (w *lockWalker) transition(mu, op string, pos token.Pos) {
	switch op {
	case "Lock", "RLock":
		w.held[mu] = pos
	case "Unlock", "RUnlock":
		delete(w.held, mu)
	}
}
