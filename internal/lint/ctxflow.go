package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// CtxflowAnalyzer enforces context discipline on the serving request paths
// in internal/core: cancellation must flow from the incoming request to the
// detection kernels (PR 3 made every inference call context-aware precisely
// so an abandoned request stops computing).
//
// In request-path packages it reports:
//   - any call to context.Background() or context.TODO(): a request path
//     never manufactures a root context — roots belong to main() and tests.
//     Convenience wrappers that intentionally provide one carry a justified
//     suppression.
//   - HTTP handlers (func(w http.ResponseWriter, r *http.Request)) that
//     invoke a detection or monitoring call (method name Detect*/Monitor*)
//     without referencing r.Context() anywhere in the handler body —
//     the shape that silently severs cancellation.
//
// A package opts in by being repro/internal/core or by carrying a
// `//repro:requestpath` comment in any file.
var CtxflowAnalyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid root contexts and unthreaded r.Context() on internal/core request paths",
	Run:  runCtxflow,
}

var requestPathPkgs = map[string]bool{
	"repro/internal/core": true,
}

var detectCallRe = regexp.MustCompile(`^(Detect|Monitor)`)

func runCtxflow(pass *analysis.Pass) error {
	if !pkgDeclaredBy(pass, requestPathPkgs, "//repro:requestpath") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || funcPkgPath(fn) != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(), "context.%s() manufactures a root context on a request path; thread the caller's ctx (or r.Context()) instead", fn.Name())
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHandler(pass, fd)
		}
	}
	return nil
}

// checkHandler flags HTTP handlers that call into detection without ever
// touching r.Context().
func checkHandler(pass *analysis.Pass, fd *ast.FuncDecl) {
	reqParam := handlerRequestParam(pass, fd)
	if reqParam == nil {
		return
	}
	var detectCall *ast.CallExpr
	usesReqContext := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Context" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == reqParam {
				usesReqContext = true
			}
		}
		if detectCall == nil && detectCallRe.MatchString(sel.Sel.Name) {
			detectCall = call
		}
		return true
	})
	if detectCall != nil && !usesReqContext {
		pass.Reportf(detectCall.Pos(), "handler %s calls detection without threading r.Context(); an abandoned request will keep computing", fd.Name.Name)
	}
}

// handlerRequestParam returns the *http.Request parameter object of an HTTP
// handler signature (w http.ResponseWriter, r *http.Request), or nil.
func handlerRequestParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) != 2 {
		return nil
	}
	wt := pass.TypesInfo.TypeOf(params.List[0].Type)
	rt := pass.TypesInfo.TypeOf(params.List[1].Type)
	if wt == nil || rt == nil {
		return nil
	}
	if !isNamedType(wt, false, "http", "ResponseWriter") || !isNamedType(rt, true, "http", "Request") {
		return nil
	}
	if len(params.List[1].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(params.List[1].Names[0])
}
