package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// HotallocAnalyzer extends the zero-allocation discipline of
// docs/PERFORMANCE.md from the handful of AllocsPerRun-benched functions to
// every function on the hot path. A function is hot when it takes a
// *tensor.Workspace parameter (the arena contract: scratch comes from the
// workspace, not the heap) or when its doc comment carries a
// `//repro:hotpath` line.
//
// Inside a hot function it reports the allocating constructs Go cannot hide:
// make, new, slice/map composite literals, &composite (escaping), string
// concatenation, string<->[]byte/[]rune conversions, closures, calls into
// known-allocating stdlib formatters (fmt.Sprintf and friends, errors.New,
// strconv, strings.Join/Repeat), and interface boxing of non-pointer values
// at call sites.
//
// Methods of tensor.Workspace itself are exempt: the workspace is where
// amortized growth is supposed to live. The nil-workspace fallback paths the
// arena contract documents go through tensor constructors (NewMatrix,
// Workspace.Get), which this analyzer deliberately does not flag — the
// discipline is about per-call allocation in the caller, not the arena's own
// growth.
var HotallocAnalyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in hot-path functions (those taking *tensor.Workspace or marked //repro:hotpath)",
	Run:  runHotalloc,
}

// allocFuncs are stdlib calls that always allocate their result.
var allocFuncs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": false},
	"errors":  {"New": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "FormatBool": true, "Quote": true},
	"strings": {"Join": true, "Repeat": true, "ToUpper": true, "ToLower": true},
}

func runHotalloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			why, hot := hotReason(pass, fd)
			if !hot {
				continue
			}
			checkHotBody(pass, fd, why)
		}
	}
	return nil
}

// hotReason reports whether fd is on the declared hot path and why.
func hotReason(pass *analysis.Pass, fd *ast.FuncDecl) (string, bool) {
	if declHasDirective(fd.Doc, "//repro:hotpath") {
		return "marked //repro:hotpath", true
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t != nil && isNamedType(t, true, "tensor", "Workspace") {
			return "takes *tensor.Workspace", true
		}
	}
	return "", false
}

// checkHotBody walks one hot function and reports allocating constructs.
// Arguments of panic() calls are exempt: building a panic message allocates
// only on the path that aborts the program, which is never the hot path.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl, why string) {
	// Workspace methods are the arena itself; their amortized growth is the
	// design.
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type); t != nil && isNamedType(t, true, "tensor", "Workspace") {
			return
		}
	}
	panicArgs := panicArgRanges(pass, fd.Body)
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n != nil && inPanic(n.Pos()) {
			return false
		}
		return checkHotNode(pass, fd, n, why)
	})
}

// panicArgRanges returns the position ranges of every panic() argument list
// in body.
func panicArgRanges(pass *analysis.Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if len(call.Args) > 0 {
			out = append(out, [2]token.Pos{call.Args[0].Pos(), call.Rparen})
		}
		return true
	})
	return out
}

// checkHotNode reports the allocating construct n represents, if any, and
// reports whether the walk should descend into n.
func checkHotNode(pass *analysis.Pass, fd *ast.FuncDecl, n ast.Node, why string) bool {
	switch e := n.(type) {
	case *ast.CallExpr:
		checkHotCall(pass, fd, e, why)
	case *ast.CompositeLit:
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			break
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			pass.Reportf(e.Pos(), "slice literal allocates in hot-path function %s (%s)", fd.Name.Name, why)
		case *types.Map:
			pass.Reportf(e.Pos(), "map literal allocates in hot-path function %s (%s)", fd.Name.Name, why)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				pass.Reportf(e.Pos(), "&composite literal escapes to the heap in hot-path function %s (%s)", fd.Name.Name, why)
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD && isStringExpr(pass, e) && !isConstExpr(pass, e) {
			pass.Reportf(e.Pos(), "string concatenation allocates in hot-path function %s (%s)", fd.Name.Name, why)
		}
	case *ast.AssignStmt:
		if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringExpr(pass, e.Lhs[0]) {
			pass.Reportf(e.Pos(), "string += allocates in hot-path function %s (%s)", fd.Name.Name, why)
		}
	case *ast.FuncLit:
		pass.Reportf(e.Pos(), "closure allocates in hot-path function %s (%s)", fd.Name.Name, why)
	}
	return true
}

// checkHotCall reports allocation at one call site: make/new, allocating
// stdlib helpers, string conversions, and interface boxing of arguments.
func checkHotCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, why string) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot-path function %s (%s); draw from the workspace", fd.Name.Name, why)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hot-path function %s (%s); draw from the workspace", fd.Name.Name, why)
			}
			return
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convAllocates(pass, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "string/byte-slice conversion copies in hot-path function %s (%s)", fd.Name.Name, why)
		}
		return
	}
	fn := calleeFunc(pass, call)
	if fn != nil {
		if names, ok := allocFuncs[funcPkgPath(fn)]; ok && names[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s allocates in hot-path function %s (%s)", fn.Pkg().Name(), fn.Name(), fd.Name.Name, why)
			return
		}
	}
	// Interface boxing: a concrete non-pointer argument passed to an
	// interface parameter allocates an interface header.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerLike(at) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hot-path function %s (%s)", at, pt, fd.Name.Name, why)
	}
}

// convAllocates reports whether converting arg to dst copies memory:
// string <-> []byte/[]rune in either direction.
func convAllocates(pass *analysis.Pass, dst types.Type, arg ast.Expr) bool {
	src := pass.TypesInfo.TypeOf(arg)
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isPointerLike reports whether values of t fit in an interface's data word
// without allocating.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}
