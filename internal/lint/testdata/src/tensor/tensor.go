// Package tensor is a fixture stand-in for repro/internal/tensor. The
// analyzers match the Workspace arena by package and type name, so tests can
// exercise the hot-path contract without importing the real package.
package tensor

// Workspace is the fake arena.
type Workspace struct {
	floats []float32
}

// GetFloats returns arena scratch of length n.
func (w *Workspace) GetFloats(n int) []float32 {
	if cap(w.floats) < n {
		w.floats = make([]float32, n)
	}
	return w.floats[:n]
}

// Merge takes a *Workspace parameter, which would make it hot — but it is a
// method of the arena itself, where amortized growth is the design, so
// hotalloc stays silent.
func (w *Workspace) Merge(src *Workspace) {
	w.floats = append(w.floats, make([]float32, len(src.floats))...)
	copy(w.floats[len(w.floats)-len(src.floats):], src.floats)
}
