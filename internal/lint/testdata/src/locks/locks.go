// Package locks exercises the locksafe analyzer.
package locks

import (
	"sync"
	"time"
)

type hub struct {
	mu    sync.Mutex
	subs  []chan int
	state int
}

// publishBad sends while holding the lock: one slow subscriber stalls every
// caller behind the mutex.
func (h *hub) publishBad(v int) {
	h.mu.Lock()
	for _, ch := range h.subs {
		ch <- v // want "blocking channel send"
	}
	h.mu.Unlock()
}

// publishGood is the sanctioned SSE shape: select with default drops instead
// of stalling.
func (h *hub) publishGood(v int) {
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- v:
		default:
		}
	}
	h.mu.Unlock()
}

// sleepBad parks the goroutine while a deferred unlock holds the lock.
func (h *hub) sleepBad() {
	h.mu.Lock()
	defer h.mu.Unlock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep can block"
}

// waitBad receives under the lock.
func (h *hub) waitBad(ch chan int) {
	h.mu.Lock()
	h.state = <-ch // want "blocking channel receive"
	h.mu.Unlock()
}

// selectBad has no default clause, so the select itself parks.
func (h *hub) selectBad(a, b chan int) {
	h.mu.Lock()
	select { // want "blocking select"
	case h.state = <-a:
	case h.state = <-b:
	}
	h.mu.Unlock()
}

// branchGood unlocks on every branch before blocking.
func (h *hub) branchGood(ready bool, ch chan int) {
	h.mu.Lock()
	if ready {
		h.state++
		h.mu.Unlock()
	} else {
		h.mu.Unlock()
	}
	ch <- h.state
}

// earlyReturnGood: the locked arm returns; the fall-through has unlocked by
// the time it blocks.
func (h *hub) earlyReturnGood(ch chan int) {
	h.mu.Lock()
	if h.state == 0 {
		h.mu.Unlock()
		return
	}
	h.state--
	h.mu.Unlock()
	ch <- h.state
}

// clauseGood unlocks inside every select clause, so the code after the
// select is lock-free.
func (h *hub) clauseGood(a chan int, ch chan int) {
	h.mu.Lock()
	select {
	case h.state = <-a:
		h.mu.Unlock()
	default:
		h.mu.Unlock()
	}
	ch <- h.state
}

// flushSuppressed shows the escape hatch with a recorded justification.
func (h *hub) flushSuppressed(ch chan int) {
	h.mu.Lock()
	//lint:ignore locksafe fixture exercises the escape hatch
	ch <- h.state
	h.mu.Unlock()
}
