// Package determ exercises the determinism analyzer. It is not one of the
// declared-deterministic repo packages, so it opts in with the directive
// below.
//
//repro:deterministic
package determ

import (
	"fmt"
	"math/rand" // want "import of math/rand in declared-deterministic package"
	"sort"
	"strings"
	"time"
)

// Jitter draws from the forbidden global source; only the import is flagged.
func Jitter() int {
	return rand.Intn(10)
}

// Stamp reads the wall clock twice.
func Stamp() (int64, int64) {
	t0 := time.Now()    // want "time.Now reads the wall clock"
	d := time.Since(t0) // want "time.Since reads the wall clock"
	return t0.Unix(), int64(d)
}

// Epoch shows the escape hatch: the directive covers the next line.
func Epoch() int64 {
	//lint:ignore determinism fixture exercises the escape hatch
	return time.Now().Unix()
}

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map appends to \"out\""
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned collect-then-sort shape.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump prints in map iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over map"
	}
}

// Render writes in map iteration order through a Builder.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "write inside range over map"
	}
	return b.String()
}

var _ = 0 /* want "unused lint:ignore directive for determinism" */ //lint:ignore determinism stale suppression that covers nothing

var _ = 1 /* want "lint:ignore directive needs a reason" */ //lint:ignore determinism
