// Package hotpath exercises the hotalloc analyzer against the fixture
// tensor.Workspace arena.
package hotpath

import (
	"fmt"
	"strconv"

	"tensor"
)

type point struct {
	x, y float32
}

// sink receives boxed arguments.
func sink(v interface{}) { _ = v }

// Scale is hot by the workspace-parameter rule and stays on the arena.
func Scale(ws *tensor.Workspace, xs []float32, k float32) []float32 {
	out := ws.GetFloats(len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

// Bad collects every allocating construct the analyzer knows.
func Bad(ws *tensor.Workspace, xs []float32, name string) string {
	buf := make([]float32, len(xs))   // want "make allocates"
	p := new(int)                     // want "new allocates"
	lit := []float32{1, 2}            // want "slice literal allocates"
	m := map[string]int{}             // want "map literal allocates"
	q := &point{1, 2}                 // want "&composite literal escapes"
	s := name + "!"                   // want "string concatenation allocates"
	s += name                         // want "string \\+= allocates"
	f := func() {}                    // want "closure allocates"
	msg := fmt.Sprintf("%d", len(xs)) // want "fmt.Sprintf allocates"
	b := []byte(name)                 // want "conversion copies"
	n := strconv.Itoa(len(xs))        // want "strconv.Itoa allocates"
	sink(len(xs))                     // want "boxes int into interface"
	_, _, _, _ = buf, p, lit, m
	_, _, _, _ = q, f, msg, b
	return s + n // want "string concatenation allocates"
}

// cold is not hot: the same constructs pass without comment.
func cold(xs []float32) []float32 {
	out := make([]float32, len(xs))
	copy(out, xs)
	return out
}

// Checked is hot, but panic arguments are exempt: the abort path is never
// the hot path.
func Checked(ws *tensor.Workspace, xs []float32) float32 {
	if len(xs) == 0 {
		panic(fmt.Sprintf("hotpath: empty input of %d", len(xs)))
	}
	return xs[0]
}

// Fused is hot by marker, not signature.
//
//repro:hotpath
func Fused(xs []float32) float32 {
	tmp := make([]float32, 1) // want "make allocates"
	tmp[0] = 0
	for _, x := range xs {
		tmp[0] += x
	}
	return tmp[0]
}

// Emit returns a fresh slice by contract; the suppression records why.
func Emit(ws *tensor.Workspace, xs []float32) []float32 {
	//lint:ignore hotalloc result escapes to the caller by contract
	out := make([]float32, len(xs))
	copy(out, xs)
	return out
}

// PointerArgs do not box: pointer-shaped values ride in the interface word.
func PointerArgs(ws *tensor.Workspace, p *point) {
	sink(p)
	sink(nil)
}
