// Package reqpath exercises the ctxflow analyzer. It is not
// repro/internal/core, so it opts in with the directive below.
//
//repro:requestpath
package reqpath

import (
	"context"
	"fmt"
	"net/http"
)

type engine struct{}

// Detect is the detection call handlers must thread a context into.
func (e *engine) Detect(ctx context.Context, line string) bool {
	return ctx != nil && line != ""
}

// rootCtx manufactures a root context on a request path.
func rootCtx() context.Context {
	return context.Background() // want "manufactures a root context"
}

// handleBad severs cancellation: the detection call never sees r.Context().
func (e *engine) handleBad(w http.ResponseWriter, r *http.Request) {
	verdict := e.Detect(nil, r.URL.Path) // want "calls detection without threading r.Context"
	fmt.Fprintf(w, "%v", verdict)
}

// handleGood threads the request context through.
func (e *engine) handleGood(w http.ResponseWriter, r *http.Request) {
	verdict := e.Detect(r.Context(), r.URL.Path)
	fmt.Fprintf(w, "%v", verdict)
}

// Warm runs before the server accepts traffic; the suppression records why a
// root context is legitimate here.
func Warm(e *engine) {
	//lint:ignore ctxflow warmup runs before the server accepts traffic
	e.Detect(context.Background(), "warmup")
}
