package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Linear is a fully connected layer computing y = xW + b.
type Linear struct {
	Weight *Param // [in, out]
	Bias   *Param // [1, out]; nil when the layer has no bias

	x *tensor.Matrix // cached input for Backward
}

// NewLinear returns an in→out linear layer with Xavier-initialized weights
// and zero bias.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		Weight: NewParam(name+".weight", in, out),
		Bias:   NewParam(name+".bias", 1, out),
	}
	tensor.XavierInit(l.Weight.W, in, out, rng)
	return l
}

// NewLinearNoBias returns an in→out linear layer without a bias term.
func NewLinearNoBias(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{Weight: NewParam(name+".weight", in, out)}
	tensor.XavierInit(l.Weight.W, in, out, rng)
	return l
}

// In returns the input dimension.
func (l *Linear) In() int { return l.Weight.W.Rows }

// Out returns the output dimension.
func (l *Linear) Out() int { return l.Weight.W.Cols }

// Forward computes xW + b, caching x for the backward pass.
func (l *Linear) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != l.In() {
		panic(fmt.Sprintf("nn: %s forward input dim %d, want %d", l.Weight.Name, x.Cols, l.In()))
	}
	l.x = x
	y := tensor.MatMul(nil, x, l.Weight.W)
	if l.Bias != nil {
		y = tensor.AddRowVec(y, y, l.Bias.W.Data)
	}
	return y
}

// Backward accumulates dW = xᵀ·dout and db = colsum(dout), returning
// dx = dout·Wᵀ.
func (l *Linear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	dW := tensor.TMatMul(nil, l.x, dout)
	tensor.AddScaled(l.Weight.Grad, dW, 1)
	if l.Bias != nil {
		db := tensor.ColSums(dout)
		for j, v := range db {
			l.Bias.Grad.Data[j] += v
		}
	}
	dx := tensor.MatMulT(nil, dout, l.Weight.W)
	l.x = nil
	return dx
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param {
	if l.Bias == nil {
		return []*Param{l.Weight}
	}
	return []*Param{l.Weight, l.Bias}
}

// LoRALinear wraps a base linear transformation with a Low-Rank Adaptation:
// y = xW + b + (alpha/r)·(xA)B, where W (and b) are frozen and only the rank-r
// factors A [in,r] and B [r,out] are trained. This mirrors Hu et al. (2021)
// exactly and is what Table III's "LoRA param %" column measures.
type LoRALinear struct {
	Base  *Linear
	A     *Param // [in, r]
	B     *Param // [r, out]
	Rank  int
	Scale float32 // alpha / rank

	dropout float32
	rng     *tensor.RNG

	x  *tensor.Matrix // cached input
	xa *tensor.Matrix // cached xA (post-dropout) for B's gradient
	dm *tensor.Matrix // cached dropout mask applied to x rows (nil when p=0)
}

// NewLoRA wraps base with a rank-r adapter using scaling factor alpha/r and
// the given adapter dropout probability. The base layer's parameters are
// frozen; A is Gaussian-initialized and B starts at zero so the adapted model
// initially matches the base model (the standard LoRA initialization).
func NewLoRA(base *Linear, rank int, alpha float64, dropout float32, rng *tensor.RNG) *LoRALinear {
	in, out := base.In(), base.Out()
	FreezeAll(base.Params(), true)
	l := &LoRALinear{
		Base:    base,
		A:       NewParam(base.Weight.Name+".lora_A", in, rank),
		B:       NewParam(base.Weight.Name+".lora_B", rank, out),
		Rank:    rank,
		Scale:   float32(alpha / float64(rank)),
		dropout: dropout,
		rng:     rng,
	}
	tensor.Gaussian(l.A.W, 1.0/float64(rank), rng)
	return l
}

// Forward computes the base output plus the scaled low-rank correction.
func (l *LoRALinear) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	y := l.Base.Forward(x, train)
	xin := x
	l.dm = nil
	if train && l.dropout > 0 {
		// LoRA-style dropout applies to the adapter branch input only.
		mask := tensor.New(x.Rows, x.Cols)
		keep := 1 - l.dropout
		inv := 1 / keep
		for i := range mask.Data {
			if l.rng.Float32() < keep {
				mask.Data[i] = inv
			}
		}
		xin = tensor.Mul(nil, x, mask)
		l.dm = mask
	}
	l.x = xin
	l.xa = tensor.MatMul(nil, xin, l.A.W)
	delta := tensor.MatMul(nil, l.xa, l.B.W)
	tensor.AddScaled(y, delta, l.Scale)
	return y
}

// Backward routes gradients to A and B (the base parameters are frozen but
// still receive gradient accumulation, which the optimizer ignores) and
// returns dx combining the base path and the adapter path.
func (l *LoRALinear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		panic("nn: LoRALinear.Backward before Forward")
	}
	dx := l.Base.Backward(dout) // dx through frozen base path
	// Adapter path: delta = scale·(xA)B.
	dDelta := tensor.Scale(nil, dout, l.Scale)
	dB := tensor.TMatMul(nil, l.xa, dDelta)
	tensor.AddScaled(l.B.Grad, dB, 1)
	dXA := tensor.MatMulT(nil, dDelta, l.B.W)
	dA := tensor.TMatMul(nil, l.x, dXA)
	tensor.AddScaled(l.A.Grad, dA, 1)
	dxAdapter := tensor.MatMulT(nil, dXA, l.A.W)
	if l.dm != nil {
		dxAdapter = tensor.Mul(dxAdapter, dxAdapter, l.dm)
	}
	tensor.AddScaled(dx, dxAdapter, 1)
	l.x, l.xa, l.dm = nil, nil, nil
	return dx
}

// Params returns the frozen base parameters followed by the trainable A and
// B factors.
func (l *LoRALinear) Params() []*Param {
	return append(l.Base.Params(), l.A, l.B)
}

// Merge folds the adapter into the base weights (W += scale·AB) and returns
// the base layer, as done when deploying a LoRA-tuned model.
func (l *LoRALinear) Merge() *Linear {
	delta := tensor.MatMul(nil, l.A.W, l.B.W)
	tensor.AddScaled(l.Base.Weight.W, delta, l.Scale)
	return l.Base
}
