package nn

import (
	"math"

	"repro/internal/tensor"
)

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned affine transform gamma·x̂ + beta.
type LayerNorm struct {
	Gamma *Param // [1, dim]
	Beta  *Param // [1, dim]
	Eps   float32

	xhat   *tensor.Matrix // cached normalized input
	invStd []float32      // cached per-row 1/σ
}

// NewLayerNorm returns a LayerNorm over dim features with gamma=1, beta=0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Gamma: NewParam(name+".gamma", 1, dim),
		Beta:  NewParam(name+".beta", 1, dim),
		Eps:   1e-5,
	}
	ln.Gamma.W.Fill(1)
	return ln
}

// Forward normalizes each row of x.
func (ln *LayerNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	n, d := x.Rows, x.Cols
	out := tensor.New(n, d)
	ln.xhat = tensor.New(n, d)
	ln.invStd = make([]float32, n)
	g, b := ln.Gamma.W.Data, ln.Beta.W.Data
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(d)
		var varsum float32
		for _, v := range row {
			dv := v - mean
			varsum += dv * dv
		}
		inv := 1 / float32(math.Sqrt(float64(varsum/float32(d)+ln.Eps)))
		ln.invStd[i] = inv
		xr := ln.xhat.Row(i)
		or := out.Row(i)
		for j, v := range row {
			xh := (v - mean) * inv
			xr[j] = xh
			or[j] = g[j]*xh + b[j]
		}
	}
	return out
}

// Backward implements the standard layer-norm gradient.
func (ln *LayerNorm) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if ln.xhat == nil {
		panic("nn: LayerNorm.Backward before Forward")
	}
	n, d := dout.Rows, dout.Cols
	dx := tensor.New(n, d)
	g := ln.Gamma.W.Data
	gGrad := ln.Gamma.Grad.Data
	bGrad := ln.Beta.Grad.Data
	for i := 0; i < n; i++ {
		dr := dout.Row(i)
		xr := ln.xhat.Row(i)
		// dγ, dβ accumulate across rows.
		var sumDxhat, sumDxhatXhat float32
		dxhat := make([]float32, d)
		for j := 0; j < d; j++ {
			gGrad[j] += dr[j] * xr[j]
			bGrad[j] += dr[j]
			dh := dr[j] * g[j]
			dxhat[j] = dh
			sumDxhat += dh
			sumDxhatXhat += dh * xr[j]
		}
		inv := ln.invStd[i]
		dxr := dx.Row(i)
		nd := float32(d)
		for j := 0; j < d; j++ {
			dxr[j] = inv / nd * (nd*dxhat[j] - sumDxhat - xr[j]*sumDxhatXhat)
		}
	}
	ln.xhat = nil
	return dx
}

// Params returns gamma and beta.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// GELU is the Gaussian Error Linear Unit activation (tanh approximation),
// the standard feed-forward nonlinearity in BERT/GPT-style transformers.
type GELU struct {
	x *tensor.Matrix
}

// NewGELU returns a GELU activation layer.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward applies GELU element-wise.
func (g *GELU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	g.x = x
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = geluScalar(v)
	}
	return out
}

// geluScalar computes the tanh-approximation GELU in pure float32 using the
// fast tanh (float64 math.Tanh plus the conversion round trip was ~15% of a
// whole encoder forward). Training and inference share this one function, so
// the batched, sequential, and backward paths stay mutually consistent.
func geluScalar(v float32) float32 {
	t := tensor.TanhFast32(float32(geluC) * (v + 0.044715*v*v*v))
	return 0.5 * v * (1 + t)
}

func geluGradScalar(v float32) float32 {
	t := tensor.TanhFast32(float32(geluC) * (v + 0.044715*v*v*v))
	sech2 := 1 - t*t
	return 0.5*(1+t) + 0.5*v*sech2*float32(geluC)*(1+3*0.044715*v*v)
}

// Backward multiplies by the GELU derivative at the cached input.
func (g *GELU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if g.x == nil {
		panic("nn: GELU.Backward before Forward")
	}
	dx := tensor.New(dout.Rows, dout.Cols)
	for i, v := range g.x.Data {
		dx.Data[i] = dout.Data[i] * geluGradScalar(v)
	}
	g.x = nil
	return dx
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// ReLU is the rectified linear activation, used by the MLP baselines.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative entries.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	dx := tensor.New(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	r.mask = nil
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation, used by the autoencoder
// baselines and pooler heads.
type Tanh struct {
	y *tensor.Matrix
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	t.y = out
	return out
}

// Backward multiplies by 1 - tanh².
func (t *Tanh) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if t.y == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	dx := tensor.New(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := t.y.Data[i]
		dx.Data[i] = v * (1 - y*y)
	}
	t.y = nil
	return dx
}

// Params returns nil; Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1-P) (inverted dropout). At inference it is the
// identity.
type Dropout struct {
	P   float32
	rng *tensor.RNG

	mask *tensor.Matrix
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(p float32, rng *tensor.RNG) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies inverted dropout when train is true.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	inv := 1 / keep
	d.mask = tensor.New(x.Rows, x.Cols)
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float32() < keep {
			d.mask.Data[i] = inv
			out.Data[i] = v * inv
		}
	}
	return out
}

// Backward applies the cached mask (identity if Forward ran in eval mode).
func (d *Dropout) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return dout
	}
	dx := tensor.Mul(nil, dout, d.mask)
	d.mask = nil
	return dx
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// Embedding maps integer token ids to dense vectors. It is not a Layer (its
// input is ids, not a matrix); the transformer models call it directly.
type Embedding struct {
	Table *Param // [vocab, dim]

	ids []int // cached ids for Backward
}

// NewEmbedding returns a vocab×dim embedding table with N(0, 0.02²) init
// (the BERT/GPT convention).
func NewEmbedding(name string, vocab, dim int, rng *tensor.RNG) *Embedding {
	e := &Embedding{Table: NewParam(name, vocab, dim)}
	tensor.Gaussian(e.Table.W, 0.02, rng)
	return e
}

// Forward gathers rows of the table for each id.
func (e *Embedding) Forward(ids []int) *tensor.Matrix {
	dim := e.Table.W.Cols
	out := tensor.New(len(ids), dim)
	for i, id := range ids {
		copy(out.Row(i), e.Table.W.Row(id))
	}
	e.ids = ids
	return out
}

// Backward scatters dout rows into the table gradient.
func (e *Embedding) Backward(dout *tensor.Matrix) {
	if e.ids == nil {
		panic("nn: Embedding.Backward before Forward")
	}
	for i, id := range e.ids {
		gr := e.Table.Grad.Row(id)
		dr := dout.Row(i)
		for j, v := range dr {
			gr[j] += v
		}
	}
	e.ids = nil
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }
