package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// QuantizedTensor stores a matrix in block-wise 4-bit affine quantization:
// each block of BlockSize consecutive values shares one float32 scale and one
// float32 zero-point, and values are stored two-per-byte. This mirrors the
// BitsAndBytes NF4/linear-4bit storage used by the paper for ICL models,
// giving the same ~8× weight-memory reduction code path.
type QuantizedTensor struct {
	Rows, Cols int
	BlockSize  int
	Packed     []byte    // two 4-bit codes per byte, row-major element order
	Scales     []float32 // one per block
	Zeros      []float32 // one per block
}

// DefaultQuantBlock is the block size used when quantizing linear layers.
const DefaultQuantBlock = 64

// Quantize4Bit converts m to 4-bit block-quantized form. Each block's range
// [min,max] is mapped linearly onto the 16 available codes.
func Quantize4Bit(m *tensor.Matrix, blockSize int) *QuantizedTensor {
	if blockSize <= 0 {
		panic("nn: non-positive quantization block size")
	}
	n := len(m.Data)
	q := &QuantizedTensor{
		Rows: m.Rows, Cols: m.Cols, BlockSize: blockSize,
		Packed: make([]byte, (n+1)/2),
	}
	nBlocks := (n + blockSize - 1) / blockSize
	q.Scales = make([]float32, nBlocks)
	q.Zeros = make([]float32, nBlocks)
	for b := 0; b < nBlocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		minv, maxv := m.Data[lo], m.Data[lo]
		for _, v := range m.Data[lo:hi] {
			if v < minv {
				minv = v
			}
			if v > maxv {
				maxv = v
			}
		}
		scale := (maxv - minv) / 15
		if scale == 0 {
			scale = 1 // all-equal block; codes become 0 and dequantize to minv
		}
		q.Scales[b] = scale
		q.Zeros[b] = minv
		for i := lo; i < hi; i++ {
			code := int((m.Data[i]-minv)/scale + 0.5)
			if code < 0 {
				code = 0
			}
			if code > 15 {
				code = 15
			}
			if i%2 == 0 {
				q.Packed[i/2] |= byte(code)
			} else {
				q.Packed[i/2] |= byte(code) << 4
			}
		}
	}
	return q
}

// Dequantize reconstructs a float32 matrix from q.
func (q *QuantizedTensor) Dequantize() *tensor.Matrix {
	out := tensor.New(q.Rows, q.Cols)
	n := len(out.Data)
	for i := 0; i < n; i++ {
		var code byte
		if i%2 == 0 {
			code = q.Packed[i/2] & 0x0f
		} else {
			code = q.Packed[i/2] >> 4
		}
		b := i / q.BlockSize
		out.Data[i] = q.Zeros[b] + float32(code)*q.Scales[b]
	}
	return out
}

// MemoryBytes reports the storage footprint of the quantized form.
func (q *QuantizedTensor) MemoryBytes() int {
	return len(q.Packed) + 4*len(q.Scales) + 4*len(q.Zeros)
}

// Float32Bytes reports the storage footprint of the unquantized form.
func (q *QuantizedTensor) Float32Bytes() int { return 4 * q.Rows * q.Cols }

// QuantizeLinear replaces a Linear layer's weights with their 4-bit
// dequantized reconstruction in place (simulating inference through the
// quantized weights, as BitsAndBytes does by dequantizing per-matmul) and
// returns the quantized storage and the reconstruction RMS error. The layer's
// parameters are frozen afterwards: 4-bit base weights are not trainable,
// which is why the paper pairs quantization with LoRA.
func QuantizeLinear(l *Linear, blockSize int) (*QuantizedTensor, float64) {
	q := Quantize4Bit(l.Weight.W, blockSize)
	deq := q.Dequantize()
	var sq float64
	for i, v := range l.Weight.W.Data {
		d := float64(v - deq.Data[i])
		sq += d * d
	}
	rms := 0.0
	if n := len(l.Weight.W.Data); n > 0 {
		rms = sq / float64(n)
	}
	l.Weight.W = deq
	FreezeAll(l.Params(), true)
	return q, rms
}

// String summarizes the quantized tensor.
func (q *QuantizedTensor) String() string {
	return fmt.Sprintf("QuantizedTensor(%dx%d, 4-bit, block=%d, %dB vs %dB fp32)",
		q.Rows, q.Cols, q.BlockSize, q.MemoryBytes(), q.Float32Bytes())
}
