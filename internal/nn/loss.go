package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy between row-wise
// softmax(logits) and integer targets, returning the loss and the gradient
// ∂loss/∂logits (already divided by the batch size). Rows whose target is
// IgnoreIndex contribute neither loss nor gradient — this is how padding
// positions are masked during language-model pre-training.
type SoftmaxCrossEntropy struct {
	// IgnoreIndex marks targets to skip (default -1).
	IgnoreIndex int
}

// NewSoftmaxCrossEntropy returns a loss with IgnoreIndex -1.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy {
	return &SoftmaxCrossEntropy{IgnoreIndex: -1}
}

// Loss returns (mean loss, dlogits). logits is [n, classes]; targets has
// length n.
func (s *SoftmaxCrossEntropy) Loss(logits *tensor.Matrix, targets []int) (float64, *tensor.Matrix) {
	if len(targets) != logits.Rows {
		panic("nn: cross-entropy targets length mismatch")
	}
	probs := logits.Clone()
	tensor.RowSoftmax(probs)
	grad := tensor.New(logits.Rows, logits.Cols)
	var total float64
	count := 0
	for i, t := range targets {
		if t == s.IgnoreIndex {
			continue
		}
		count++
		p := probs.At(i, t)
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(float64(p))
		gr := grad.Row(i)
		pr := probs.Row(i)
		copy(gr, pr)
		gr[t] -= 1
	}
	if count == 0 {
		return 0, grad
	}
	inv := float32(1.0 / float64(count))
	for i := range grad.Data {
		grad.Data[i] *= inv
	}
	return total / float64(count), grad
}

// MSE computes the mean squared error between pred and target and the
// gradient ∂loss/∂pred. Used by the autoencoder baselines.
func MSE(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	grad := tensor.New(pred.Rows, pred.Cols)
	var total float64
	n := float64(len(pred.Data))
	if n == 0 {
		return 0, grad
	}
	for i, v := range pred.Data {
		d := v - target.Data[i]
		total += float64(d) * float64(d)
		grad.Data[i] = 2 * d / float32(n)
	}
	return total / n, grad
}

// BinaryCrossEntropyLogits computes mean BCE between sigmoid(logits) and
// targets in {0,1}, with the gradient w.r.t. logits. Used by binary
// classifier heads in baselines.
func BinaryCrossEntropyLogits(logits *tensor.Matrix, targets []float32) (float64, *tensor.Matrix) {
	if logits.Cols != 1 || logits.Rows != len(targets) {
		panic("nn: BCE expects [n,1] logits matching targets")
	}
	grad := tensor.New(logits.Rows, 1)
	var total float64
	n := float64(len(targets))
	for i, t := range targets {
		z := float64(logits.Data[i])
		// log(1+exp(-|z|)) + max(z,0) - z*t  (numerically stable)
		loss := math.Max(z, 0) - z*float64(t) + math.Log1p(math.Exp(-math.Abs(z)))
		total += loss
		p := 1 / (1 + math.Exp(-z))
		grad.Data[i] = float32((p - float64(t)) / n)
	}
	return total / n, grad
}
