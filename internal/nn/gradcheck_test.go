package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates ∂loss/∂θ for one scalar of a parameter by central
// differences, where loss is computed by lossFn (which must re-run the full
// forward pass).
func numericalGrad(theta *float32, lossFn func() float64) float64 {
	const h = 1e-3
	orig := *theta
	*theta = orig + h
	lp := lossFn()
	*theta = orig - h
	lm := lossFn()
	*theta = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGradients runs a scalar loss L = Σ dout⊙layer(x) through the
// layer and compares analytic parameter and input gradients to finite
// differences.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Matrix, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	// Fixed random upstream gradient defines the scalar loss.
	y0 := layer.Forward(x, false)
	dout := tensor.New(y0.Rows, y0.Cols)
	tensor.Gaussian(dout, 1, rng)
	lossFn := func() float64 {
		y := layer.Forward(x, false)
		var s float64
		for i, v := range y.Data {
			s += float64(v) * float64(dout.Data[i])
		}
		return s
	}
	// Analytic pass.
	ZeroGrads(layer.Params())
	layer.Forward(x, false)
	dx := layer.Backward(dout)

	for _, p := range layer.Params() {
		// Check a few scattered entries per parameter to keep tests fast.
		for k := 0; k < 5 && k < len(p.W.Data); k++ {
			idx := (k * 7919) % len(p.W.Data)
			want := numericalGrad(&p.W.Data[idx], lossFn)
			got := float64(p.Grad.Data[idx])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %v, want %v", p.Name, idx, got, want)
			}
		}
	}
	for k := 0; k < 5 && k < len(x.Data); k++ {
		idx := (k * 104729) % len(x.Data)
		want := numericalGrad(&x.Data[idx], lossFn)
		got := float64(dx.Data[idx])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Errorf("dx[%d] = %v, want %v", idx, got, want)
		}
	}
}

func randomInput(rows, cols int, seed uint64) *tensor.Matrix {
	x := tensor.New(rows, cols)
	tensor.Gaussian(x, 1, tensor.NewRNG(seed))
	return x
}

func TestLinearGradcheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	checkLayerGradients(t, NewLinear("lin", 6, 4, rng), randomInput(3, 6, 2), 1e-2)
}

func TestLinearNoBiasGradcheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	checkLayerGradients(t, NewLinearNoBias("lin", 5, 3, rng), randomInput(2, 5, 3), 1e-2)
}

func TestLayerNormGradcheck(t *testing.T) {
	checkLayerGradients(t, NewLayerNorm("ln", 8), randomInput(3, 8, 4), 2e-2)
}

func TestGELUGradcheck(t *testing.T) {
	checkLayerGradients(t, NewGELU(), randomInput(3, 5, 5), 1e-2)
}

func TestReLUGradcheck(t *testing.T) {
	checkLayerGradients(t, NewReLU(), randomInput(3, 5, 6), 1e-2)
}

func TestTanhGradcheck(t *testing.T) {
	checkLayerGradients(t, NewTanh(), randomInput(3, 5, 7), 1e-2)
}

func TestSequentialGradcheck(t *testing.T) {
	rng := tensor.NewRNG(8)
	seq := NewSequential(
		NewLinear("l1", 6, 10, rng),
		NewGELU(),
		NewLinear("l2", 10, 4, rng),
	)
	checkLayerGradients(t, seq, randomInput(3, 6, 9), 1e-2)
}

func TestLoRAGradcheck(t *testing.T) {
	rng := tensor.NewRNG(10)
	base := NewLinear("base", 6, 4, rng)
	lora := NewLoRA(base, 2, 4, 0, rng)
	// Make B nonzero so its gradient path is exercised meaningfully.
	tensor.Gaussian(lora.B.W, 0.5, rng)
	checkLayerGradients(t, lora, randomInput(3, 6, 11), 1e-2)
}

func TestCrossEntropyGradcheck(t *testing.T) {
	logits := randomInput(4, 3, 12)
	targets := []int{0, 2, 1, 1}
	ce := NewSoftmaxCrossEntropy()
	_, grad := ce.Loss(logits, targets)
	for k := 0; k < 6; k++ {
		idx := (k * 5) % len(logits.Data)
		want := numericalGrad(&logits.Data[idx], func() float64 {
			l, _ := ce.Loss(logits, targets)
			return l
		})
		got := float64(grad.Data[idx])
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("CE grad[%d] = %v, want %v", idx, got, want)
		}
	}
}

func TestMSEGradcheck(t *testing.T) {
	pred := randomInput(3, 4, 13)
	target := randomInput(3, 4, 14)
	_, grad := MSE(pred, target)
	for k := 0; k < 6; k++ {
		idx := (k * 5) % len(pred.Data)
		want := numericalGrad(&pred.Data[idx], func() float64 {
			l, _ := MSE(pred, target)
			return l
		})
		got := float64(grad.Data[idx])
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("MSE grad[%d] = %v, want %v", idx, got, want)
		}
	}
}

func TestBCEGradcheck(t *testing.T) {
	logits := randomInput(5, 1, 15)
	targets := []float32{0, 1, 1, 0, 1}
	_, grad := BinaryCrossEntropyLogits(logits, targets)
	for i := range logits.Data {
		want := numericalGrad(&logits.Data[i], func() float64 {
			l, _ := BinaryCrossEntropyLogits(logits, targets)
			return l
		})
		got := float64(grad.Data[i])
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("BCE grad[%d] = %v, want %v", i, got, want)
		}
	}
}
