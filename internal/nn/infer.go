package nn

import (
	"math"

	"repro/internal/tensor"
)

// Read-only inference forward passes.
//
// Layer.Forward caches activations on the layer for the backward pass, which
// makes a model unsafe to share across goroutines even in eval mode. The
// Infer methods below compute the same eval-mode outputs while reading only
// the layer's parameters, so a trained model can serve concurrent batched
// requests (core.Server workers, parallel trace detection) without cloning.
//
// Every Infer takes a *tensor.Workspace and draws its output (and any
// intermediates) from it, so steady-state inference reuses one arena of
// buffers instead of allocating per layer per call. A nil workspace is valid
// and falls back to plain allocation. Outputs are arena-backed when ws is
// non-nil: they are invalidated by the workspace's next Reset, and callers
// returning results past that point must copy them out first.

// Inferer is a layer that supports a read-only inference forward pass.
type Inferer interface {
	// Infer computes the eval-mode forward pass without mutating the layer,
	// drawing scratch and output buffers from ws (nil ws allocates).
	Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix
}

// Infer dispatches to l's read-only path, falling back to the caching
// eval-mode Forward for layers that do not implement Inferer (the fallback is
// not safe for concurrent use and ignores the workspace).
func Infer(l Layer, x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix {
	if il, ok := l.(Inferer); ok {
		return il.Infer(x, ws)
	}
	return l.Forward(x, false)
}

// Infer computes xW + b without caching x. The blocked matmul kernel is used:
// batched inference feeds tall packed [ΣT, d] inputs where the k-panel
// schedule keeps the weight matrix hot in cache.
func (l *Linear) Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix {
	y := tensor.MatMulBlocked(ws.Get(x.Rows, l.Out()), x, l.Weight.W)
	if l.Bias != nil {
		y = tensor.AddRowVec(y, y, l.Bias.W.Data)
	}
	return y
}

// Infer computes the base output plus the scaled low-rank correction without
// caching. Adapter dropout is inference-disabled, matching Forward in eval
// mode.
func (l *LoRALinear) Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix {
	y := l.Base.Infer(x, ws)
	xa := tensor.MatMulBlocked(ws.Get(x.Rows, l.Rank), x, l.A.W)
	delta := tensor.MatMulBlocked(ws.Get(x.Rows, l.Base.Out()), xa, l.B.W)
	tensor.AddScaled(y, delta, l.Scale)
	return y
}

// Infer normalizes each row of x without caching normalization state.
func (ln *LayerNorm) Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix {
	n, d := x.Rows, x.Cols
	out := ws.Get(n, d)
	g, b := ln.Gamma.W.Data, ln.Beta.W.Data
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(d)
		var varsum float32
		for _, v := range row {
			dv := v - mean
			varsum += dv * dv
		}
		inv := 1 / float32(math.Sqrt(float64(varsum/float32(d)+ln.Eps)))
		or := out.Row(i)
		for j, v := range row {
			or[j] = g[j]*(v-mean)*inv + b[j]
		}
	}
	return out
}

// Infer applies GELU element-wise without caching the input.
func (g *GELU) Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix {
	out := ws.Get(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = geluScalar(v)
	}
	return out
}

// Infer is the identity: dropout is disabled at inference.
func (d *Dropout) Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix { return x }

// Infer gathers embedding rows for ids without caching them for a backward
// pass. The gather is the one-hot specialization of tensor.MatMulOneHotRows:
// row i of the result is table row ids[i].
func (e *Embedding) Infer(ids []int, ws *tensor.Workspace) *tensor.Matrix {
	dim := e.Table.W.Cols
	out := ws.Get(len(ids), dim)
	for i, id := range ids {
		copy(out.Row(i), e.Table.W.Row(id))
	}
	return out
}
