package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// QuantizedLinear is an inference-only linear layer whose weights live in
// blockwise symmetric int8 (tensor.QInt8Matrix) and whose forward pass
// computes in integers end-to-end (tensor.MatMulQ8) — the real quantized
// compute path, as opposed to QuantizedTensor's storage-only 4-bit fake-quant
// which dequantizes back to fp32 before every matmul.
//
// The bias stays a fp32 Param: it is O(Out) data applied once per row, so
// quantizing it saves nothing and costs accuracy. Params() returns only the
// bias — the int8 weights are not trainable (as with 4-bit bases, which is
// why quantization pairs with LoRA for adaptation), and checkpoint
// round-trips carry them through the dedicated quantized-weights section
// instead of the fp32 parameter stream.
//
// QuantizedLinear implements Layer so it can sit in any projection slot a
// *Linear occupies (attention Wq/Wk/Wv/Wo, FFN, LM head), but Backward
// panics: quantize for serving, not for training.
type QuantizedLinear struct {
	// Name is the wrapped layer's weight name (used by checkpoints to match
	// sections to layers).
	Name string
	// W holds the packed int8 weights.
	W *tensor.QInt8Matrix
	// Bias is the fp32 bias Param; nil when the layer has no bias.
	Bias *Param
}

// QuantizeLinearInt8 converts l to an int8 inference layer with the given
// scale-block length (≤ 0 selects tensor.QInt8Block). The returned layer
// shares l's bias Param; l's fp32 weight matrix is left untouched for the
// caller to drop.
func QuantizeLinearInt8(l *Linear, block int) *QuantizedLinear {
	return &QuantizedLinear{
		Name: l.Weight.Name,
		W:    tensor.QuantizeInt8(l.Weight.W, block),
		Bias: l.Bias,
	}
}

// In returns the input dimension.
func (l *QuantizedLinear) In() int { return l.W.In }

// Out returns the output dimension.
func (l *QuantizedLinear) Out() int { return l.W.Out }

// Infer computes xW + b in int8: activations are quantized per row on the
// fly, the matmul accumulates in integers, and the bias is added in fp32.
func (l *QuantizedLinear) Infer(x *tensor.Matrix, ws *tensor.Workspace) *tensor.Matrix {
	if x.Cols != l.In() {
		panic(fmt.Sprintf("nn: %s infer input dim %d, want %d", l.Name, x.Cols, l.In()))
	}
	y := tensor.MatMulQ8(ws.Get(x.Rows, l.Out()), x, l.W, ws)
	if l.Bias != nil {
		y = tensor.AddRowVec(y, y, l.Bias.W.Data)
	}
	return y
}

// InferQuantized computes xW + b from activations quantized once by the
// caller (tensor.QuantizeRowsQ8) — how the attention layer shares one
// quantization pass across its Q, K, and V projections. Output buffers come
// from wsOut (nil allocates; the KV-capture path passes nil so cached keys
// and values outlive the workspace). Results are bitwise identical to Infer
// on the original rows.
func (l *QuantizedLinear) InferQuantized(qa tensor.QuantizedRows, wsOut *tensor.Workspace) *tensor.Matrix {
	y := tensor.MatMulQ8Pre(wsOut.Get(qa.Rows, l.Out()), qa, l.W)
	if l.Bias != nil {
		y = tensor.AddRowVec(y, y, l.Bias.W.Data)
	}
	return y
}

// Forward delegates to Infer (there is no training mode and nothing to cache
// for a backward pass that cannot run).
func (l *QuantizedLinear) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	return l.Infer(x, nil)
}

// Backward panics: int8 weights are not trainable.
func (l *QuantizedLinear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	panic(fmt.Sprintf("nn: %s is int8-quantized and inference-only; Backward is not supported", l.Name))
}

// Params returns the fp32 bias (frozen or not, the optimizer has nothing else
// to update here); the int8 weights are deliberately not Params.
func (l *QuantizedLinear) Params() []*Param {
	if l.Bias == nil {
		return nil
	}
	return []*Param{l.Bias}
}

// String summarizes the layer.
func (l *QuantizedLinear) String() string {
	return fmt.Sprintf("QuantizedLinear(%s, %s)", l.Name, l.W)
}
