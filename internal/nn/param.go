// Package nn implements the neural-network building blocks used by the
// transformer models and classical baselines in this repository: layers with
// hand-written forward/backward passes, losses, optimizers, LoRA adapters,
// and block-wise weight quantization.
//
// The design is a classic "tape-free" layer graph: each Layer caches whatever
// it needs during Forward and consumes it in Backward. Parameters carry their
// own gradient buffers and a Frozen flag, which is how both Table II
// (parameter freezing) and LoRA (frozen base weights) are implemented.
package nn

import "repro/internal/tensor"

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	// Name identifies the parameter in checkpoints and debugging output.
	Name string
	// W holds the parameter values.
	W *tensor.Matrix
	// Grad accumulates ∂loss/∂W across a mini-batch; optimizers consume and
	// zero it.
	Grad *tensor.Matrix
	// Frozen excludes the parameter from optimizer updates (its gradient is
	// still computed so that upstream layers receive correct signals).
	Frozen bool
}

// NewParam allocates a named rows×cols parameter with a zeroed gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// Size returns the number of scalar elements in the parameter.
func (p *Param) Size() int { return len(p.W.Data) }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable matrix-to-matrix transformation.
//
// Forward consumes an input of shape [n, in] and produces [n, out]; train
// selects training-time behaviour (e.g. dropout). Backward consumes
// ∂loss/∂output and returns ∂loss/∂input, accumulating parameter gradients
// as a side effect. Backward must be called at most once per Forward, with
// the gradient corresponding to the most recent Forward.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	Backward(dout *tensor.Matrix) *tensor.Matrix
	Params() []*Param
}

// ParamCount sums the scalar sizes of params.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	return n
}

// TrainableCount sums the scalar sizes of non-frozen params.
func TrainableCount(params []*Param) int {
	n := 0
	for _, p := range params {
		if !p.Frozen {
			n += p.Size()
		}
	}
	return n
}

// ZeroGrads clears every gradient in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// FreezeAll marks every parameter in params as frozen (or unfrozen).
func FreezeAll(params []*Param, frozen bool) {
	for _, p := range params {
		p.Frozen = frozen
	}
}

// Sequential chains layers into one Layer.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies each layer in order.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient through the layers in reverse order.
func (s *Sequential) Backward(dout *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
