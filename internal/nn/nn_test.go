package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestParamCounts(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("l", 4, 3, rng)
	ps := l.Params()
	if got := ParamCount(ps); got != 4*3+3 {
		t.Fatalf("ParamCount = %d, want 15", got)
	}
	if got := TrainableCount(ps); got != 15 {
		t.Fatalf("TrainableCount = %d, want 15", got)
	}
	l.Weight.Frozen = true
	if got := TrainableCount(ps); got != 3 {
		t.Fatalf("TrainableCount after freeze = %d, want 3", got)
	}
}

func TestFreezeAll(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("l", 2, 2, rng)
	FreezeAll(l.Params(), true)
	for _, p := range l.Params() {
		if !p.Frozen {
			t.Fatal("FreezeAll(true) must freeze every param")
		}
	}
	FreezeAll(l.Params(), false)
	for _, p := range l.Params() {
		if p.Frozen {
			t.Fatal("FreezeAll(false) must unfreeze every param")
		}
	}
}

func TestLinearForwardShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("l", 5, 7, rng)
	y := l.Forward(randomInput(3, 5, 1), false)
	if y.Rows != 3 || y.Cols != 7 {
		t.Fatalf("Forward shape = %dx%d, want 3x7", y.Rows, y.Cols)
	}
}

func TestLinearForwardBadDimPanics(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("l", 5, 7, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad input dim")
		}
	}()
	l.Forward(randomInput(3, 4, 1), false)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDropout(0.5, rng)
	x := randomInput(4, 4, 2)
	y := d.Forward(x, false)
	if !y.Equal(x) {
		t.Fatal("dropout must be identity in eval mode")
	}
}

func TestDropoutTrainDropsAndScales(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := NewDropout(0.5, rng)
	x := tensor.New(100, 100)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout output %v, want 0 or 2", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("dropped fraction = %v, want ≈0.5", frac)
	}
	if twos == 0 {
		t.Fatal("survivors must be scaled by 1/keep")
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(5)
	e := NewEmbedding("emb", 10, 4, rng)
	ids := []int{1, 3, 1}
	out := e.Forward(ids)
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("embedding shape = %dx%d", out.Rows, out.Cols)
	}
	// Rows 0 and 2 must be equal (same id).
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(2, j) {
			t.Fatal("same id must embed identically")
		}
	}
	dout := tensor.New(3, 4)
	dout.Fill(1)
	e.Backward(dout)
	// Token 1 appears twice so its grad row is 2, token 3 once = 1, rest 0.
	if e.Table.Grad.At(1, 0) != 2 || e.Table.Grad.At(3, 0) != 1 || e.Table.Grad.At(0, 0) != 0 {
		t.Fatalf("embedding grads: %v", e.Table.Grad.Data[:20])
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewLinear("l", 3, 2, rng)
	x := randomInput(8, 3, 3)
	targets := []int{0, 1, 0, 1, 0, 1, 0, 1}
	ce := NewSoftmaxCrossEntropy()
	opt := NewSGD(0.1, 0.9)
	var first, last float64
	for i := 0; i < 50; i++ {
		logits := l.Forward(x, true)
		loss, grad := ce.Loss(logits, targets)
		if i == 0 {
			first = loss
		}
		last = loss
		l.Backward(grad)
		opt.Step(l.Params())
	}
	if last >= first {
		t.Fatalf("SGD did not reduce loss: %v -> %v", first, last)
	}
}

func TestAdamWStepReducesLoss(t *testing.T) {
	rng := tensor.NewRNG(7)
	model := NewSequential(
		NewLinear("l1", 4, 8, rng),
		NewGELU(),
		NewLinear("l2", 8, 2, rng),
	)
	x := randomInput(16, 4, 4)
	targets := make([]int, 16)
	for i := range targets {
		// Learnable rule: sign of first feature.
		if x.At(i, 0) > 0 {
			targets[i] = 1
		}
	}
	ce := NewSoftmaxCrossEntropy()
	opt := NewAdamW(0.01, 0.01)
	var first, last float64
	for i := 0; i < 80; i++ {
		logits := model.Forward(x, true)
		loss, grad := ce.Loss(logits, targets)
		if i == 0 {
			first = loss
		}
		last = loss
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if last >= first*0.5 {
		t.Fatalf("AdamW failed to fit: %v -> %v", first, last)
	}
}

func TestFrozenParamsDoNotMove(t *testing.T) {
	rng := tensor.NewRNG(8)
	l := NewLinear("l", 3, 2, rng)
	l.Weight.Frozen = true
	before := l.Weight.W.Clone()
	x := randomInput(4, 3, 5)
	ce := NewSoftmaxCrossEntropy()
	opt := NewAdamW(0.1, 0)
	logits := l.Forward(x, true)
	_, grad := ce.Loss(logits, []int{0, 1, 0, 1})
	l.Backward(grad)
	opt.Step(l.Params())
	if !l.Weight.W.Equal(before) {
		t.Fatal("frozen weight moved under optimizer step")
	}
	// Gradient must have been cleared even for the frozen param.
	for _, g := range l.Weight.Grad.Data {
		if g != 0 {
			t.Fatal("frozen param gradient not cleared by Step")
		}
	}
	// Bias was not frozen and should have moved.
	if l.Bias.W.Data[0] == 0 && l.Bias.W.Data[1] == 0 {
		t.Fatal("unfrozen bias did not move")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	pre := ClipGradNorm([]*Param{p}, 1.0)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	var post float64
	for _, g := range p.Grad.Data {
		post += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(post)-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(post))
	}
	// Below-threshold gradients are untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0.1
	ClipGradNorm([]*Param{p}, 1.0)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestSchedules(t *testing.T) {
	// Warmup ramps up.
	if lr := LinearWarmupSchedule(1.0, 0, 10, 100); lr >= LinearWarmupSchedule(1.0, 9, 10, 100) {
		_ = lr
		t.Fatal("warmup must increase")
	}
	// Decay reaches zero at the end.
	if lr := LinearWarmupSchedule(1.0, 100, 10, 100); lr != 0 {
		t.Fatalf("final LR = %v, want 0", lr)
	}
	// Cosine: half of base at midpoint.
	if lr := CosineSchedule(1.0, 50, 100); math.Abs(lr-0.5) > 1e-9 {
		t.Fatalf("cosine midpoint = %v, want 0.5", lr)
	}
	if lr := CosineSchedule(1.0, 100, 100); lr != 0 {
		t.Fatalf("cosine final = %v, want 0", lr)
	}
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	ce := NewSoftmaxCrossEntropy()
	logits := randomInput(3, 4, 6)
	loss, grad := ce.Loss(logits, []int{-1, 2, -1})
	// Only row 1 contributes.
	for j := 0; j < 4; j++ {
		if grad.At(0, j) != 0 || grad.At(2, j) != 0 {
			t.Fatal("ignored rows must have zero gradient")
		}
	}
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
	// All-ignored batch is a zero loss, not NaN.
	loss, _ = ce.Loss(logits, []int{-1, -1, -1})
	if loss != 0 {
		t.Fatalf("all-ignored loss = %v, want 0", loss)
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	ce := NewSoftmaxCrossEntropy()
	logits := tensor.NewFrom(1, 2, []float32{100, -100})
	loss, _ := ce.Loss(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct loss = %v, want ≈0", loss)
	}
}

func TestLoRAInitialOutputMatchesBase(t *testing.T) {
	rng := tensor.NewRNG(9)
	base := NewLinear("base", 5, 3, rng)
	x := randomInput(4, 5, 7)
	want := base.Forward(x, false)
	lora := NewLoRA(base, 2, 4, 0, rng)
	got := lora.Forward(x, false)
	if !got.AllClose(want, 1e-5) {
		t.Fatal("LoRA with B=0 must match base output")
	}
}

func TestLoRATrainableFraction(t *testing.T) {
	rng := tensor.NewRNG(10)
	base := NewLinear("base", 100, 100, rng)
	lora := NewLoRA(base, 4, 8, 0, rng)
	ps := lora.Params()
	total := ParamCount(ps)
	trainable := TrainableCount(ps)
	if trainable != 100*4+4*100 {
		t.Fatalf("trainable = %d, want 800", trainable)
	}
	frac := float64(trainable) / float64(total)
	if frac > 0.10 {
		t.Fatalf("LoRA trainable fraction = %v, want small", frac)
	}
}

func TestLoRAMergeMatchesAdapterOutput(t *testing.T) {
	rng := tensor.NewRNG(11)
	base := NewLinear("base", 6, 4, rng)
	lora := NewLoRA(base, 2, 4, 0, rng)
	tensor.Gaussian(lora.B.W, 0.3, rng)
	x := randomInput(3, 6, 8)
	want := lora.Forward(x, false)
	merged := lora.Merge()
	got := merged.Forward(x, false)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("merged LoRA output differs from adapter output")
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	rng := tensor.NewRNG(12)
	m := tensor.New(32, 32)
	tensor.Gaussian(m, 0.1, rng)
	q := Quantize4Bit(m, 64)
	deq := q.Dequantize()
	if deq.Rows != 32 || deq.Cols != 32 {
		t.Fatal("dequantize shape mismatch")
	}
	// Block range / 15 bounds the max error at half a step.
	var maxErr float64
	for i := range m.Data {
		e := math.Abs(float64(m.Data[i] - deq.Data[i]))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.1 {
		t.Fatalf("max quantization error = %v, too large", maxErr)
	}
}

func TestQuantizeMemorySavings(t *testing.T) {
	rng := tensor.NewRNG(13)
	m := tensor.New(128, 128)
	tensor.Gaussian(m, 1, rng)
	q := Quantize4Bit(m, 64)
	ratio := float64(q.Float32Bytes()) / float64(q.MemoryBytes())
	if ratio < 6 {
		t.Fatalf("compression ratio = %v, want > 6x", ratio)
	}
}

func TestQuantizeConstantBlock(t *testing.T) {
	m := tensor.New(4, 4)
	m.Fill(3.5)
	q := Quantize4Bit(m, 8)
	deq := q.Dequantize()
	for _, v := range deq.Data {
		if v != 3.5 {
			t.Fatalf("constant block dequantized to %v, want 3.5", v)
		}
	}
}

func TestQuantizeLinearFreezes(t *testing.T) {
	rng := tensor.NewRNG(14)
	l := NewLinear("l", 16, 16, rng)
	_, rms := QuantizeLinear(l, 64)
	if rms < 0 {
		t.Fatalf("rms = %v", rms)
	}
	for _, p := range l.Params() {
		if !p.Frozen {
			t.Fatal("quantized linear params must be frozen")
		}
	}
}

// Property: quantization error is bounded by half a quantization step for
// every element.
func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(16)
		m := tensor.New(rows, cols)
		tensor.Gaussian(m, 1, rng)
		q := Quantize4Bit(m, 16)
		deq := q.Dequantize()
		for i := range m.Data {
			b := i / q.BlockSize
			step := float64(q.Scales[b])
			if math.Abs(float64(m.Data[i]-deq.Data[i])) > step/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
