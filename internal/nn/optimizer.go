package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every non-frozen parameter and zeroes all
	// gradients (including those of frozen parameters).
	Step(params []*Param)
	// SetLR changes the learning rate used by subsequent steps.
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	lr       float64
	Momentum float64

	velocity map[*Param]*tensor.Matrix
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum
// (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Matrix)}
}

// Step applies v = μv - lr·g; w += v (or plain w -= lr·g when μ=0).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		if s.Momentum == 0 {
			tensor.AddScaled(p.W, p.Grad, float32(-s.lr))
		} else {
			v := s.velocity[p]
			if v == nil {
				v = tensor.New(p.W.Rows, p.W.Cols)
				s.velocity[p] = v
			}
			mu := float32(s.Momentum)
			lr := float32(s.lr)
			for i := range v.Data {
				v.Data[i] = mu*v.Data[i] - lr*p.Grad.Data[i]
				p.W.Data[i] += v.Data[i]
			}
		}
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR reports the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// optimizer used for all transformer fine-tuning in this repository.
type AdamW struct {
	lr          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdamW returns an AdamW optimizer with standard betas (0.9, 0.999).
func NewAdamW(lr, weightDecay float64) *AdamW {
	return &AdamW{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param]*tensor.Matrix), v: make(map[*Param]*tensor.Matrix),
	}
}

// Step applies one AdamW update with bias correction.
func (a *AdamW) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		m := a.m[p]
		if m == nil {
			m = tensor.New(p.W.Rows, p.W.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Rows, p.W.Cols)
		}
		v := a.v[p]
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		lr := float32(a.lr)
		wd := float32(a.WeightDecay)
		eps := float32(a.Eps)
		ibc1, ibc2 := float32(1/bc1), float32(1/bc2)
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mhat := m.Data[i] * ibc1
			vhat := v.Data[i] * ibc2
			p.W.Data[i] -= lr * (mhat/(float32(math.Sqrt(float64(vhat)))+eps) + wd*p.W.Data[i])
		}
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// LR reports the current learning rate.
func (a *AdamW) LR() float64 { return a.lr }

// ClipGradNorm rescales all non-frozen gradients so their global L2 norm is
// at most maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Frozen {
			continue
		}
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, p := range params {
		if p.Frozen {
			continue
		}
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
	return norm
}

// LinearWarmupSchedule returns the learning rate for a given step under
// linear warmup followed by linear decay to zero at totalSteps — the standard
// HuggingFace fine-tuning schedule.
func LinearWarmupSchedule(base float64, step, warmup, totalSteps int) float64 {
	if step < warmup && warmup > 0 {
		return base * float64(step+1) / float64(warmup)
	}
	if totalSteps <= warmup {
		return base
	}
	frac := float64(totalSteps-step) / float64(totalSteps-warmup)
	if frac < 0 {
		frac = 0
	}
	return base * frac
}

// CosineSchedule returns the learning rate for a given step under cosine
// annealing from base to 0 over totalSteps.
func CosineSchedule(base float64, step, totalSteps int) float64 {
	if totalSteps <= 0 || step >= totalSteps {
		return 0
	}
	return base * 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(totalSteps)))
}
