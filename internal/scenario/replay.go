package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/logparse"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// ReplayConfig tunes how a stream is driven against a server.
type ReplayConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080" or an
	// httptest.Server URL for an in-process anomalyd.
	BaseURL string
	// Model is the ?model= routing parameter ("" = default model).
	Model string
	// Speed compresses the schedule: 10 replays a 10-second schedule in one
	// second. Default 1.
	Speed float64
	// Timeout bounds each /v1/detect/batch request (default 30s). The
	// monitor replay streams for the whole schedule and ignores it.
	Timeout time.Duration
	// MaxBatch caps lines per request when a burst shares one arrival
	// instant (default 256).
	MaxBatch int
	// Policy is the trace-verdict policy quality is scored under (zero
	// value = DefaultTracePolicy).
	Policy core.TracePolicy
	// Client overrides the HTTP client (Timeout is applied per request via
	// context, so a shared client is fine).
	Client *http.Client
	// Retry, when set, sends batch requests through the resilience client —
	// backoff, retry budget, breaker, Retry-After honor — instead of a bare
	// Client.Do. Its HTTP field defaults to Client. Retried requests count
	// once in the latency/error tallies (the retries are inside the request).
	Retry *resilience.Client
	// FaultWindow, when its End is nonzero, partitions client latencies into
	// pre/during/post segments by each request's scheduled offset in
	// compressed (wall-clock) time. Set it to the chaos campaign's window so
	// Result.Phases shows degradation and recovery separately.
	FaultWindow faults.Window
}

func (c *ReplayConfig) fill() {
	if c.Speed <= 0 {
		c.Speed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Policy == (core.TracePolicy{}) {
		c.Policy = core.DefaultTracePolicy()
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Retry != nil && c.Retry.HTTP == nil {
		c.Retry.HTTP = c.Client
	}
}

// Quality bundles the detection-quality metrics of one replay, scored
// against the stream's ground truth: ranking quality over raw scores
// (ROC-AUC, average precision), per-line F1 over hard predictions, and
// trace-verdict F1 — predicted trace flags (policy over predicted labels)
// against ground-truth trace flags (policy over true labels).
type Quality struct {
	AUC            float64 `json:"roc_auc"`
	AP             float64 `json:"avg_precision"`
	LineF1         float64 `json:"line_f1"`
	TraceF1        float64 `json:"trace_f1"`
	TracePrecision float64 `json:"trace_precision"`
	TraceRecall    float64 `json:"trace_recall"`
}

// Failures is the failure taxonomy of one replay: every failed request is
// attributed to exactly one bucket, so Timeout+Shed+Server+Transport equals
// Result.Errors. Under chaos the split is the diagnosis — a shed-heavy run
// means admission control worked; a transport-heavy one means connections
// died before the server could answer.
type Failures struct {
	// Timeout counts requests that ran out their deadline (client context).
	Timeout int `json:"timeout"`
	// Shed counts 429 responses — load the server refused at admission.
	Shed int `json:"shed"`
	// Server counts other non-200 HTTP statuses (5xx and stray 4xx).
	Server int `json:"server"`
	// Transport counts connection-level failures: resets, refused dials.
	Transport int `json:"transport"`
}

// Total is the summed failure count across all buckets.
func (f Failures) Total() int { return f.Timeout + f.Shed + f.Server + f.Transport }

// PhaseLatencies are client p99 latencies partitioned by the fault window:
// before it opens, while it is active, and after it closes.
//
// PostP99Ms alone can lie about recovery: the replay is open-loop, so a
// backlog built during the fault window keeps inflating post-window
// latencies until it drains, and when the drain outlasts the schedule the
// post p99 sits at backlog height with zero post-window faults (BENCH_7's
// chaos/near-dup row: post 2087ms ≈ during 2085ms). RecoveryMs is the
// drain-aware complement, derived from completion instants (scheduled
// offset + measured latency): the last over-bound completion marks the
// moment the server was back to answering under the pre-fault bound
// (1.2×pre p99 + 50ms cushion), and RecoveryMs is that instant minus the
// window close. 0 means recovery by the time the window shut; −1 means the
// run's tail never got back under the bound — an honest "did not recover
// within this run" instead of a flattering percentile.
type PhaseLatencies struct {
	PreP99Ms    float64 `json:"pre_p99_ms"`
	DuringP99Ms float64 `json:"during_p99_ms"`
	PostP99Ms   float64 `json:"post_p99_ms"`
	RecoveryMs  float64 `json:"recovery_ms"`
}

// Result is one scenario replay's measurements.
type Result struct {
	Scenario    string
	Events      int
	Requests    int
	Errors      int // failed requests (their events are excluded from quality)
	WallSeconds float64
	LinesPerSec float64
	// Client-side round-trip latency percentiles per request.
	ClientP50Ms float64
	ClientP99Ms float64
	// Failures splits Errors by cause.
	Failures Failures
	// DegradedReqs counts requests answered by the brownout fallback
	// (degraded:true in the batch response).
	DegradedReqs int
	// Phases is set when ReplayConfig.FaultWindow was given: p99 before,
	// during, and after the fault window.
	Phases *PhaseLatencies
	// Server is the model's serving-stats snapshot after the replay (stats
	// are reset before it starts): queue saturation and stage latencies.
	Server  core.EngineStats
	Quality Quality
	// Preds holds the server's hard per-event verdicts in stream order, -1
	// where the event's request failed. Paired replays (cascade on vs off)
	// compare these for verdict agreement; report rows never serialize them.
	Preds []int
}

// sample is one scored event for quality evaluation.
type sample struct {
	label, pred, trace int
	score              float64
}

// Replay drives the stream's schedule against POST /v1/detect/batch,
// open-loop: each request fires at its scheduled instant whether or not
// earlier requests have returned, so server-side queueing shows up in the
// measured latencies rather than being hidden by client pacing. Events
// sharing an arrival instant (bursts) are sent as one batch request.
//
// Server stats are reset at start (POST /v1/stats/reset) and snapshotted at
// the end (GET /v1/models), so Result.Server reflects only this replay.
func Replay(ctx context.Context, s *Stream, cfg ReplayConfig) (*Result, error) {
	cfg.fill()
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("scenario: replaying empty stream %q", s.Name)
	}
	resetServerStats(ctx, cfg)

	type request struct {
		at    time.Duration
		first int // index of first event
		n     int
	}
	var reqs []request
	for i := 0; i < len(s.Events); {
		j := i + 1
		for j < len(s.Events) && s.Events[j].At == s.Events[i].At && j-i < cfg.MaxBatch {
			j++
		}
		reqs = append(reqs, request{at: s.Events[i].At, first: i, n: j - i})
		i = j
	}

	scores := make([]float64, len(s.Events))
	preds := make([]int, len(s.Events))
	okEv := make([]bool, len(s.Events))
	latencies := make([]float64, len(reqs))
	reqOK := make([]bool, len(reqs))
	reqFail := make([]failKind, len(reqs))
	reqDegraded := make([]bool, len(reqs))

	var wg sync.WaitGroup
	//lint:ignore determinism open-loop replay paces arrivals on the wall clock by design; generation stays seeded
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for ri, rq := range reqs {
		due := start.Add(time.Duration(float64(rq.at) / cfg.Speed))
		//lint:ignore determinism open-loop replay paces arrivals on the wall clock by design; generation stays seeded
		if wait := time.Until(due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go func(ri int, rq request) {
			defer wg.Done()
			sentences := make([]string, rq.n)
			for k := 0; k < rq.n; k++ {
				sentences[k] = logparse.Sentence(s.Events[rq.first+k].Job)
			}
			//lint:ignore determinism wall-clock latency measurement of the replayed request; a measurement, not scenario bytes
			t0 := time.Now()
			br, err := postBatch(ctx, cfg, sentences)
			//lint:ignore determinism wall-clock latency measurement of the replayed request; a measurement, not scenario bytes
			latencies[ri] = float64(time.Since(t0)) / float64(time.Millisecond)
			if err != nil || len(br.Results) != rq.n {
				reqFail[ri] = classifyFailure(err)
				return
			}
			reqOK[ri] = true
			reqDegraded[ri] = br.Degraded
			for k, res := range br.Results {
				scores[rq.first+k] = res.Score
				preds[rq.first+k] = res.Label
				okEv[rq.first+k] = true
			}
		}(ri, rq)
	}
	wg.Wait()
	//lint:ignore determinism wall-clock latency measurement of the replayed request; a measurement, not scenario bytes
	wall := time.Since(start)

	res := &Result{
		Scenario:    s.Name,
		Events:      len(s.Events),
		Requests:    len(reqs),
		WallSeconds: wall.Seconds(),
		ClientP50Ms: metrics.Percentile(latencies, 0.50),
		ClientP99Ms: metrics.Percentile(latencies, 0.99),
	}
	if wall > 0 {
		res.LinesPerSec = float64(len(s.Events)) / wall.Seconds()
	}
	var samples []sample
	res.Preds = make([]int, len(s.Events))
	for i, ev := range s.Events {
		if okEv[i] {
			res.Preds[i] = preds[i]
			samples = append(samples, sample{label: ev.Job.Label, pred: preds[i], trace: ev.Job.TraceID, score: scores[i]})
		} else {
			res.Preds[i] = -1
		}
	}
	for ri, ok := range reqOK {
		if !ok {
			res.Errors++
			switch reqFail[ri] {
			case failTimeout:
				res.Failures.Timeout++
			case failShed:
				res.Failures.Shed++
			case failServer:
				res.Failures.Server++
			default:
				res.Failures.Transport++
			}
		} else if reqDegraded[ri] {
			res.DegradedReqs++
		}
	}
	if w := cfg.FaultWindow; w.End > 0 {
		var pre, during, post []float64
		offsets := make([]float64, len(reqs))
		for ri, rq := range reqs {
			sched := time.Duration(float64(rq.at) / cfg.Speed)
			offsets[ri] = float64(sched) / float64(time.Millisecond)
			switch {
			case sched < w.Start:
				pre = append(pre, latencies[ri])
			case sched < w.End:
				during = append(during, latencies[ri])
			default:
				post = append(post, latencies[ri])
			}
		}
		res.Phases = &PhaseLatencies{
			PreP99Ms:    metrics.Percentile(pre, 0.99),
			DuringP99Ms: metrics.Percentile(during, 0.99),
			PostP99Ms:   metrics.Percentile(post, 0.99),
		}
		bound := 1.2*res.Phases.PreP99Ms + 50
		res.Phases.RecoveryMs = drainRecovery(offsets, latencies, float64(w.End)/float64(time.Millisecond), bound)
	}
	res.Quality = qualityOf(samples, cfg.Policy)
	if st, err := fetchServerStats(ctx, cfg); err == nil {
		res.Server = st
	}
	return res, nil
}

// drainRecovery computes PhaseLatencies.RecoveryMs from per-request
// scheduled offsets and latencies (both in milliseconds). A request
// completes at offset+latency; the server has recovered once every
// completion after some instant is under bound. That instant is the latest
// over-bound completion — provided at least one under-bound request
// completed after it, which is the evidence recovery was actually observed
// rather than the run simply ending mid-backlog.
func drainRecovery(offsets, latencies []float64, windowEndMs, bound float64) float64 {
	last := -1.0 // completion instant of the latest over-bound request
	for i := range offsets {
		if end := offsets[i] + latencies[i]; latencies[i] > bound && end > last {
			last = end
		}
	}
	observed := false
	for i := range offsets {
		if end := offsets[i] + latencies[i]; end > last && latencies[i] <= bound {
			observed = true
			break
		}
	}
	if !observed {
		return -1
	}
	if last <= windowEndMs {
		return 0
	}
	return last - windowEndMs
}

// MonitorResult is one scenario replay through the streaming monitor
// endpoint: ingest throughput plus the server's run report.
type MonitorResult struct {
	Scenario    string
	Events      int
	WallSeconds float64
	LinesPerSec float64
	Report      core.MonitorReport
}

// ReplayMonitor streams the stream's raw log lines to POST /v1/monitor on
// schedule through a chunked request body — the tail-a-log-file serving path
// — and returns the monitor report. Open-loop like Replay: lines are written
// at their scheduled instants.
func ReplayMonitor(ctx context.Context, s *Stream, cfg ReplayConfig) (*MonitorResult, error) {
	cfg.fill()
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("scenario: replaying empty stream %q", s.Name)
	}
	pr, pw := io.Pipe()
	//lint:ignore determinism open-loop replay paces arrivals on the wall clock by design; generation stays seeded
	start := time.Now()
	go func() {
		timer := time.NewTimer(0)
		defer timer.Stop()
		if !timer.Stop() {
			<-timer.C
		}
		for _, ev := range s.Events {
			due := start.Add(time.Duration(float64(ev.At) / cfg.Speed))
			//lint:ignore determinism open-loop replay paces arrivals on the wall clock by design; generation stays seeded
			if wait := time.Until(due); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					pw.CloseWithError(ctx.Err())
					return
				}
			}
			if _, err := io.WriteString(pw, ev.Line+"\n"); err != nil {
				return // server went away; the POST below reports it
			}
		}
		pw.Close()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/monitor"+modelQuery(cfg.Model), pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("scenario: monitor replay status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var mr core.MonitorResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, err
	}
	//lint:ignore determinism wall-clock latency measurement of the replayed request; a measurement, not scenario bytes
	wall := time.Since(start)
	out := &MonitorResult{
		Scenario:    s.Name,
		Events:      len(s.Events),
		WallSeconds: wall.Seconds(),
		Report:      mr.MonitorReport,
	}
	if wall > 0 {
		out.LinesPerSec = float64(len(s.Events)) / wall.Seconds()
	}
	return out, nil
}

// EvaluateScores computes Quality for per-event anomaly scores produced
// outside the server — how the seed baselines enter the loadlab report.
// preds are hard 0/1 predictions (typically scores thresholded at a rate
// calibrated on training data).
func EvaluateScores(s *Stream, scores []float64, preds []int, policy core.TracePolicy) Quality {
	if len(scores) != len(s.Events) || len(preds) != len(s.Events) {
		panic("scenario: scores/preds length mismatch with stream")
	}
	if policy == (core.TracePolicy{}) {
		policy = core.DefaultTracePolicy()
	}
	samples := make([]sample, len(s.Events))
	for i, ev := range s.Events {
		samples[i] = sample{label: ev.Job.Label, pred: preds[i], trace: ev.Job.TraceID, score: scores[i]}
	}
	return qualityOf(samples, policy)
}

func qualityOf(samples []sample, policy core.TracePolicy) Quality {
	if len(samples) == 0 {
		return Quality{}
	}
	labels := make([]int, len(samples))
	preds := make([]int, len(samples))
	scores := make([]float64, len(samples))
	jobs := make(map[int]int)
	trueAnom := make(map[int]int)
	predAnom := make(map[int]int)
	for i, sm := range samples {
		labels[i], preds[i], scores[i] = sm.label, sm.pred, sm.score
		jobs[sm.trace]++
		trueAnom[sm.trace] += sm.label
		predAnom[sm.trace] += sm.pred
	}
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	traceTruth := make([]int, len(ids))
	tracePred := make([]int, len(ids))
	for i, id := range ids {
		if policy.Flagged(jobs[id], trueAnom[id]) {
			traceTruth[i] = 1
		}
		if policy.Flagged(jobs[id], predAnom[id]) {
			tracePred[i] = 1
		}
	}
	lineConf := metrics.NewConfusion(labels, preds)
	traceConf := metrics.NewConfusion(traceTruth, tracePred)
	return Quality{
		AUC:            metrics.ROCAUC(labels, scores),
		AP:             metrics.AveragePrecision(labels, scores),
		LineF1:         lineConf.F1(),
		TraceF1:        traceConf.F1(),
		TracePrecision: traceConf.Precision(),
		TraceRecall:    traceConf.Recall(),
	}
}

func modelQuery(model string) string {
	if model == "" {
		return ""
	}
	return "?model=" + model
}

// failKind buckets one request failure for the Failures taxonomy.
type failKind int

const (
	failTransport failKind = iota // connection-level: reset, refused, EOF
	failTimeout                   // client deadline expired
	failShed                      // HTTP 429
	failServer                    // other non-200 HTTP status
)

// statusError is a non-200 batch response, kept typed so the replay can
// attribute it to the right Failures bucket.
type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("scenario: batch status %d", e.code) }

// classifyFailure maps a postBatch error to its taxonomy bucket. A decode
// error or short result set (err == nil path) counts as a server failure:
// the server answered, but wrongly.
func classifyFailure(err error) failKind {
	if err == nil {
		return failServer
	}
	var se *statusError
	if errors.As(err, &se) {
		if se.code == http.StatusTooManyRequests {
			return failShed
		}
		return failServer
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return failTimeout
	}
	return failTransport
}

// postBatch sends one /v1/detect/batch request and decodes the response.
// With cfg.Retry set the request goes through the resilience client, so
// shed and transient failures are retried inside this call.
func postBatch(ctx context.Context, cfg ReplayConfig, sentences []string) (core.BatchResponse, error) {
	var br core.BatchResponse
	body, err := json.Marshal(core.BatchRequest{Sentences: sentences})
	if err != nil {
		return br, err
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, cfg.BaseURL+"/v1/detect/batch"+modelQuery(cfg.Model), bytes.NewReader(body))
	if err != nil {
		return br, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp *http.Response
	if cfg.Retry != nil {
		resp, err = cfg.Retry.Do(req)
	} else {
		resp, err = cfg.Client.Do(req)
	}
	if err != nil {
		return br, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return br, &statusError{code: resp.StatusCode}
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return br, err
	}
	return br, nil
}

// resetServerStats zeroes the target model's serving counters so the final
// snapshot covers only this replay. Best-effort: a server without the
// endpoint just yields cumulative stats.
func resetServerStats(ctx context.Context, cfg ReplayConfig) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/stats/reset"+modelQuery(cfg.Model), nil)
	if err != nil {
		return
	}
	if resp, err := cfg.Client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// fetchServerStats reads the replayed model's stats from GET /v1/models.
func fetchServerStats(ctx context.Context, cfg ReplayConfig) (core.EngineStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/v1/models", nil)
	if err != nil {
		return core.EngineStats{}, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return core.EngineStats{}, err
	}
	defer resp.Body.Close()
	var mr core.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return core.EngineStats{}, err
	}
	for _, m := range mr.Models {
		if m.Name == cfg.Model || (cfg.Model == "" && m.Default) {
			return m.Stats, nil
		}
	}
	return core.EngineStats{}, fmt.Errorf("scenario: model %q not in /v1/models", cfg.Model)
}
