package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/logparse"
	"repro/internal/metrics"
)

// ReplayConfig tunes how a stream is driven against a server.
type ReplayConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080" or an
	// httptest.Server URL for an in-process anomalyd.
	BaseURL string
	// Model is the ?model= routing parameter ("" = default model).
	Model string
	// Speed compresses the schedule: 10 replays a 10-second schedule in one
	// second. Default 1.
	Speed float64
	// Timeout bounds each /v1/detect/batch request (default 30s). The
	// monitor replay streams for the whole schedule and ignores it.
	Timeout time.Duration
	// MaxBatch caps lines per request when a burst shares one arrival
	// instant (default 256).
	MaxBatch int
	// Policy is the trace-verdict policy quality is scored under (zero
	// value = DefaultTracePolicy).
	Policy core.TracePolicy
	// Client overrides the HTTP client (Timeout is applied per request via
	// context, so a shared client is fine).
	Client *http.Client
}

func (c *ReplayConfig) fill() {
	if c.Speed <= 0 {
		c.Speed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Policy == (core.TracePolicy{}) {
		c.Policy = core.DefaultTracePolicy()
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
}

// Quality bundles the detection-quality metrics of one replay, scored
// against the stream's ground truth: ranking quality over raw scores
// (ROC-AUC, average precision), per-line F1 over hard predictions, and
// trace-verdict F1 — predicted trace flags (policy over predicted labels)
// against ground-truth trace flags (policy over true labels).
type Quality struct {
	AUC            float64 `json:"roc_auc"`
	AP             float64 `json:"avg_precision"`
	LineF1         float64 `json:"line_f1"`
	TraceF1        float64 `json:"trace_f1"`
	TracePrecision float64 `json:"trace_precision"`
	TraceRecall    float64 `json:"trace_recall"`
}

// Result is one scenario replay's measurements.
type Result struct {
	Scenario    string
	Events      int
	Requests    int
	Errors      int // failed requests (their events are excluded from quality)
	WallSeconds float64
	LinesPerSec float64
	// Client-side round-trip latency percentiles per request.
	ClientP50Ms float64
	ClientP99Ms float64
	// Server is the model's serving-stats snapshot after the replay (stats
	// are reset before it starts): queue saturation and stage latencies.
	Server  core.EngineStats
	Quality Quality
}

// sample is one scored event for quality evaluation.
type sample struct {
	label, pred, trace int
	score              float64
}

// Replay drives the stream's schedule against POST /v1/detect/batch,
// open-loop: each request fires at its scheduled instant whether or not
// earlier requests have returned, so server-side queueing shows up in the
// measured latencies rather than being hidden by client pacing. Events
// sharing an arrival instant (bursts) are sent as one batch request.
//
// Server stats are reset at start (POST /v1/stats/reset) and snapshotted at
// the end (GET /v1/models), so Result.Server reflects only this replay.
func Replay(ctx context.Context, s *Stream, cfg ReplayConfig) (*Result, error) {
	cfg.fill()
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("scenario: replaying empty stream %q", s.Name)
	}
	resetServerStats(ctx, cfg)

	type request struct {
		at    time.Duration
		first int // index of first event
		n     int
	}
	var reqs []request
	for i := 0; i < len(s.Events); {
		j := i + 1
		for j < len(s.Events) && s.Events[j].At == s.Events[i].At && j-i < cfg.MaxBatch {
			j++
		}
		reqs = append(reqs, request{at: s.Events[i].At, first: i, n: j - i})
		i = j
	}

	scores := make([]float64, len(s.Events))
	preds := make([]int, len(s.Events))
	okEv := make([]bool, len(s.Events))
	latencies := make([]float64, len(reqs))
	reqOK := make([]bool, len(reqs))

	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for ri, rq := range reqs {
		due := start.Add(time.Duration(float64(rq.at) / cfg.Speed))
		if wait := time.Until(due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go func(ri int, rq request) {
			defer wg.Done()
			sentences := make([]string, rq.n)
			for k := 0; k < rq.n; k++ {
				sentences[k] = logparse.Sentence(s.Events[rq.first+k].Job)
			}
			t0 := time.Now()
			results, err := postBatch(ctx, cfg, sentences)
			latencies[ri] = float64(time.Since(t0)) / float64(time.Millisecond)
			if err != nil || len(results) != rq.n {
				return
			}
			reqOK[ri] = true
			for k, res := range results {
				scores[rq.first+k] = res.Score
				preds[rq.first+k] = res.Label
				okEv[rq.first+k] = true
			}
		}(ri, rq)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result{
		Scenario:    s.Name,
		Events:      len(s.Events),
		Requests:    len(reqs),
		WallSeconds: wall.Seconds(),
		ClientP50Ms: metrics.Percentile(latencies, 0.50),
		ClientP99Ms: metrics.Percentile(latencies, 0.99),
	}
	if wall > 0 {
		res.LinesPerSec = float64(len(s.Events)) / wall.Seconds()
	}
	var samples []sample
	for i, ev := range s.Events {
		if okEv[i] {
			samples = append(samples, sample{label: ev.Job.Label, pred: preds[i], trace: ev.Job.TraceID, score: scores[i]})
		}
	}
	for _, ok := range reqOK {
		if !ok {
			res.Errors++
		}
	}
	res.Quality = qualityOf(samples, cfg.Policy)
	if st, err := fetchServerStats(ctx, cfg); err == nil {
		res.Server = st
	}
	return res, nil
}

// MonitorResult is one scenario replay through the streaming monitor
// endpoint: ingest throughput plus the server's run report.
type MonitorResult struct {
	Scenario    string
	Events      int
	WallSeconds float64
	LinesPerSec float64
	Report      core.MonitorReport
}

// ReplayMonitor streams the stream's raw log lines to POST /v1/monitor on
// schedule through a chunked request body — the tail-a-log-file serving path
// — and returns the monitor report. Open-loop like Replay: lines are written
// at their scheduled instants.
func ReplayMonitor(ctx context.Context, s *Stream, cfg ReplayConfig) (*MonitorResult, error) {
	cfg.fill()
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("scenario: replaying empty stream %q", s.Name)
	}
	pr, pw := io.Pipe()
	start := time.Now()
	go func() {
		timer := time.NewTimer(0)
		defer timer.Stop()
		if !timer.Stop() {
			<-timer.C
		}
		for _, ev := range s.Events {
			due := start.Add(time.Duration(float64(ev.At) / cfg.Speed))
			if wait := time.Until(due); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					pw.CloseWithError(ctx.Err())
					return
				}
			}
			if _, err := io.WriteString(pw, ev.Line+"\n"); err != nil {
				return // server went away; the POST below reports it
			}
		}
		pw.Close()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/monitor"+modelQuery(cfg.Model), pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("scenario: monitor replay status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var mr core.MonitorResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	out := &MonitorResult{
		Scenario:    s.Name,
		Events:      len(s.Events),
		WallSeconds: wall.Seconds(),
		Report:      mr.MonitorReport,
	}
	if wall > 0 {
		out.LinesPerSec = float64(len(s.Events)) / wall.Seconds()
	}
	return out, nil
}

// EvaluateScores computes Quality for per-event anomaly scores produced
// outside the server — how the seed baselines enter the loadlab report.
// preds are hard 0/1 predictions (typically scores thresholded at a rate
// calibrated on training data).
func EvaluateScores(s *Stream, scores []float64, preds []int, policy core.TracePolicy) Quality {
	if len(scores) != len(s.Events) || len(preds) != len(s.Events) {
		panic("scenario: scores/preds length mismatch with stream")
	}
	if policy == (core.TracePolicy{}) {
		policy = core.DefaultTracePolicy()
	}
	samples := make([]sample, len(s.Events))
	for i, ev := range s.Events {
		samples[i] = sample{label: ev.Job.Label, pred: preds[i], trace: ev.Job.TraceID, score: scores[i]}
	}
	return qualityOf(samples, policy)
}

func qualityOf(samples []sample, policy core.TracePolicy) Quality {
	if len(samples) == 0 {
		return Quality{}
	}
	labels := make([]int, len(samples))
	preds := make([]int, len(samples))
	scores := make([]float64, len(samples))
	jobs := make(map[int]int)
	trueAnom := make(map[int]int)
	predAnom := make(map[int]int)
	for i, sm := range samples {
		labels[i], preds[i], scores[i] = sm.label, sm.pred, sm.score
		jobs[sm.trace]++
		trueAnom[sm.trace] += sm.label
		predAnom[sm.trace] += sm.pred
	}
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	traceTruth := make([]int, len(ids))
	tracePred := make([]int, len(ids))
	for i, id := range ids {
		if policy.Flagged(jobs[id], trueAnom[id]) {
			traceTruth[i] = 1
		}
		if policy.Flagged(jobs[id], predAnom[id]) {
			tracePred[i] = 1
		}
	}
	lineConf := metrics.NewConfusion(labels, preds)
	traceConf := metrics.NewConfusion(traceTruth, tracePred)
	return Quality{
		AUC:            metrics.ROCAUC(labels, scores),
		AP:             metrics.AveragePrecision(labels, scores),
		LineF1:         lineConf.F1(),
		TraceF1:        traceConf.F1(),
		TracePrecision: traceConf.Precision(),
		TraceRecall:    traceConf.Recall(),
	}
}

func modelQuery(model string) string {
	if model == "" {
		return ""
	}
	return "?model=" + model
}

// postBatch sends one /v1/detect/batch request and decodes its results.
func postBatch(ctx context.Context, cfg ReplayConfig, sentences []string) ([]core.DetectResponse, error) {
	body, err := json.Marshal(core.BatchRequest{Sentences: sentences})
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, cfg.BaseURL+"/v1/detect/batch"+modelQuery(cfg.Model), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("scenario: batch status %d", resp.StatusCode)
	}
	var br core.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	return br.Results, nil
}

// resetServerStats zeroes the target model's serving counters so the final
// snapshot covers only this replay. Best-effort: a server without the
// endpoint just yields cumulative stats.
func resetServerStats(ctx context.Context, cfg ReplayConfig) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/stats/reset"+modelQuery(cfg.Model), nil)
	if err != nil {
		return
	}
	if resp, err := cfg.Client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// fetchServerStats reads the replayed model's stats from GET /v1/models.
func fetchServerStats(ctx context.Context, cfg ReplayConfig) (core.EngineStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/v1/models", nil)
	if err != nil {
		return core.EngineStats{}, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return core.EngineStats{}, err
	}
	defer resp.Body.Close()
	var mr core.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return core.EngineStats{}, err
	}
	for _, m := range mr.Models {
		if m.Name == cfg.Model || (cfg.Model == "" && m.Default) {
			return m.Stats, nil
		}
	}
	return core.EngineStats{}, fmt.Errorf("scenario: model %q not in /v1/models", cfg.Model)
}
