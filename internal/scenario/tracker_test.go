package scenario

import (
	"testing"

	"repro/internal/core"
)

// TestTrackerFlagLatchUnderBursty replays the bursty stream's ground truth
// through a TraceTracker and checks the flag event latches: each flagged
// trace fires exactly once, however its jobs are interleaved, and the final
// flagged set matches the stream's trace truth under the same policy.
func TestTrackerFlagLatchUnderBursty(t *testing.T) {
	d, _ := Lookup("bursty")
	s := d.Generate(tinyCfg())
	policy := core.DefaultTracePolicy()
	tr := core.NewTraceTracker(policy, 0)

	fired := map[int]int{}
	for _, ev := range s.Events {
		if _, newly := tr.Observe(ev.Job.TraceID, ev.Job.Label == 1); newly {
			fired[ev.Job.TraceID]++
		}
	}
	for id, n := range fired {
		if n != 1 {
			t.Errorf("trace %d flag fired %d times, want latch-once", id, n)
		}
	}
	truth := s.TraceTruth(policy)
	for id, flagged := range truth {
		if flagged != (fired[id] == 1) {
			t.Errorf("trace %d: tracker flagged=%v, truth=%v", id, fired[id] == 1, flagged)
		}
	}
	if tr.Evicted() != 0 {
		t.Errorf("default-capacity tracker evicted %d traces", tr.Evicted())
	}
}

// TestTrackerStateSurvivesRetriedDelivery models the chaos replay's client
// retries: a shed batch is re-sent, so the monitor path may see some jobs
// again. The latch must not re-fire for a still-tracked trace, and verdict
// counts stay monotone.
func TestTrackerStateSurvivesRetriedDelivery(t *testing.T) {
	tr := core.NewTraceTracker(core.TracePolicy{MinAnomalous: 3, MinFraction: 1}, 0)
	fires := 0
	observe := func(times int) {
		for k := 0; k < times; k++ {
			if _, newly := tr.Observe(7, true); newly {
				fires++
			}
		}
	}
	observe(3) // first delivery trips the policy
	if fires != 1 {
		t.Fatalf("flag fired %d times on first delivery, want 1", fires)
	}
	observe(3) // retried delivery of the same jobs
	if fires != 1 {
		t.Fatalf("retried delivery re-fired the flag (%d fires)", fires)
	}
	v, ok := tr.Verdict(7)
	if !ok || v.Jobs != 6 || v.Anomalous != 6 || !v.Flagged {
		t.Fatalf("verdict after retry = %+v", v)
	}
}

// TestTrackerEvictionUnderTraceChurn caps the window well below the bursty
// stream's trace count: evictions must occur, the window must stay at
// capacity, and a flagged trace that is evicted and returns may legitimately
// re-fire (bounded memory trades for re-alerts).
func TestTrackerEvictionUnderTraceChurn(t *testing.T) {
	d, _ := Lookup("bursty")
	s := d.Generate(tinyCfg())
	traces := map[int]bool{}
	for _, ev := range s.Events {
		traces[ev.Job.TraceID] = true
	}
	if len(traces) < 8 {
		t.Skipf("bursty stream has only %d traces", len(traces))
	}
	cap := 4
	tr := core.NewTraceTracker(core.DefaultTracePolicy(), cap)
	for _, ev := range s.Events {
		tr.Observe(ev.Job.TraceID, ev.Job.Label == 1)
	}
	if tr.Evicted() == 0 {
		t.Errorf("window of %d over %d traces evicted nothing", cap, len(traces))
	}
	if got := tr.Len(); got != cap {
		t.Errorf("window size = %d, want pinned at %d", got, cap)
	}

	// Eviction resets the latch: a returning trace starts fresh and re-fires
	// once it trips the policy again.
	small := core.NewTraceTracker(core.TracePolicy{MinAnomalous: 1, MinFraction: 1}, 1)
	if _, newly := small.Observe(1, true); !newly {
		t.Fatal("first trip did not fire")
	}
	small.Observe(2, false) // evicts trace 1
	if small.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", small.Evicted())
	}
	if _, newly := small.Observe(1, true); !newly {
		t.Error("returning evicted trace should re-fire its flag")
	}
}
