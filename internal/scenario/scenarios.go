package scenario

import (
	"repro/internal/flowbench"
)

// genSteady is the baseline: eight interleaved executions, one line per
// jittered inter-arrival gap. Every other scenario is a controlled deviation
// from this shape.
func genSteady(g *gen) {
	const k = 8
	sl := g.newSlots(k)
	for !g.full() {
		g.tick()
		g.emit(sl.take(g.rng.Intn(k)))
	}
}

// genBursty produces open-loop burst arrivals: a quiet gap worth ~24 nominal
// intervals, then 8–64 lines at the same instant. The replayer sends each
// burst as one request batch, so the server's queue depth (and the
// coalescer) sees the spike instead of client-side pacing hiding it.
func genBursty(g *gen) {
	const k = 8
	sl := g.newSlots(k)
	for !g.full() {
		g.pause(24)
		for b := 8 + g.rng.Intn(57); b > 0 && !g.full(); b-- {
			g.emit(sl.take(g.rng.Intn(k)))
		}
	}
}

// genTraceHeavy runs only two concurrent executions, each emitting long
// contiguous runs (8–16 lines): few, deep traces — the online tracker holds
// a small working set that accumulates many jobs per verdict.
func genTraceHeavy(g *gen) {
	const k = 2
	sl := g.newSlots(k)
	for !g.full() {
		s := g.rng.Intn(k)
		for run := 8 + g.rng.Intn(9); run > 0 && !g.full(); run-- {
			g.tick()
			g.emit(sl.take(s))
		}
	}
}

// genLineHeavy touches many executions shallowly: each execution contributes
// only its first 2–5 lines before the stream moves on — maximal distinct
// trace IDs per line, which churns the tracker's LRU window.
func genLineHeavy(g *gen) {
	for !g.full() {
		trace := g.takeTrace()
		m := 2 + g.rng.Intn(4)
		for i := 0; i < m && i < len(trace) && !g.full(); i++ {
			g.tick()
			g.emit(trace[i])
		}
	}
}

// genDrift injects distribution drift mid-stream. The first half draws only
// from anomaly-free executions; the second half switches to anomalous
// executions *and* applies a covariate drift ramp (features scaled by up to
// 1.4×) to every line, labels untouched. Both the anomaly prior and the
// feature distribution move, so a detector trained on the stationary
// distribution degrades measurably in the second half — the calibration
// signal for drift-aware serving.
func genDrift(g *gen) {
	var clean, dirty [][]flowbench.Job
	for _, trace := range g.pool {
		anomalous := false
		for _, j := range trace {
			if j.Label == 1 {
				anomalous = true
				break
			}
		}
		if anomalous {
			dirty = append(dirty, trace)
		} else {
			clean = append(clean, trace)
		}
	}
	const k = 8
	half := g.cfg.Events / 2
	takeFrom := func(pool [][]flowbench.Job, next *int, cur [][]flowbench.Job, i int) ([][]flowbench.Job, flowbench.Job) {
		if len(cur[i]) == 0 {
			cur[i] = pool[*next%len(pool)]
			*next++
		}
		j := cur[i][0]
		cur[i] = cur[i][1:]
		return cur, j
	}
	var j flowbench.Job
	cleanNext, dirtyNext := 0, 0
	cleanCur := make([][]flowbench.Job, k)
	dirtyCur := make([][]flowbench.Job, k)
	for len(g.events) < half {
		g.tick()
		cleanCur, j = takeFrom(clean, &cleanNext, cleanCur, g.rng.Intn(k))
		g.emit(j)
	}
	for !g.full() {
		g.tick()
		dirtyCur, j = takeFrom(dirty, &dirtyNext, dirtyCur, g.rng.Intn(k))
		progress := float64(len(g.events)-half) / float64(g.cfg.Events-half)
		scale := 1 + 0.4*progress
		for i := range j.Features {
			j.Features[i] *= scale
		}
		g.emit(j)
	}
}

// genNearDup stresses the PR 5 sentence-dedup coalescer: every base line
// arrives in a same-instant group with 1–3 exact duplicates (which dedup
// answers for free) and 1–2 near duplicates — one feature nudged by exactly
// one formatting quantum, so the sentence differs by a single digit and the
// dedup map must miss. Duplicates inherit the base job's ground truth.
func genNearDup(g *gen) {
	const k = 4
	sl := g.newSlots(k)
	for !g.full() {
		g.tick()
		j := sl.take(g.rng.Intn(k))
		g.emit(j)
		for d := 1 + g.rng.Intn(3); d > 0 && !g.full(); d-- {
			g.emit(j)
		}
		for d := 1 + g.rng.Intn(2); d > 0 && !g.full(); d-- {
			nj := j
			f := g.rng.Intn(flowbench.NumFeatures)
			// FormatValue prints one decimal below 1e6 and none above: the
			// smallest perturbation that changes the rendered line.
			delta := 0.1
			if nj.Features[f] >= 1e6 {
				delta = 1
			}
			if g.rng.Intn(2) == 0 && nj.Features[f] > delta {
				delta = -delta
			}
			nj.Features[f] += delta
			g.emit(nj)
		}
	}
}
