package scenario

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/resilience"
)

func TestChaosNamesRoundTrip(t *testing.T) {
	if got := ChaosName("bursty"); got != "chaos-bursty" {
		t.Fatalf("ChaosName = %q", got)
	}
	base, chaos := SplitChaos("chaos-bursty")
	if !chaos || base != "bursty" {
		t.Fatalf("SplitChaos(chaos-bursty) = %q, %v", base, chaos)
	}
	base, chaos = SplitChaos("bursty")
	if chaos || base != "bursty" {
		t.Fatalf("SplitChaos(bursty) = %q, %v", base, chaos)
	}
}

// TestChaosPlanShape pins the campaign derivation: the fault window is the
// middle third of the compressed schedule, the detect path is targeted, and
// the plan is a pure function of stream and seed.
func TestChaosPlanShape(t *testing.T) {
	d, _ := Lookup("bursty")
	s := d.Generate(tinyCfg())
	plan := ChaosPlan(s, 10, 42)
	compressed := time.Duration(float64(s.Duration()) / 10)
	if plan.Window.Start != compressed/3 || plan.Window.End != 2*compressed/3 {
		t.Fatalf("window = %+v, want middle third of %s", plan.Window, compressed)
	}
	if plan.Path != "/v1/detect" {
		t.Fatalf("path = %q", plan.Path)
	}
	for _, k := range plan.Kinds {
		if k == faults.Stall {
			t.Fatal("replay palette must not include stall")
		}
	}
	if again := ChaosPlan(s, 10, 42); again.Seed != plan.Seed || again.Window != plan.Window {
		t.Fatal("ChaosPlan is not deterministic")
	}
	if other := ChaosPlan(s, 10, 43); other.Seed == plan.Seed {
		t.Fatal("seed does not vary the campaign")
	}
}

// faultScript answers each batch request by arrival number: the first few
// get scripted failures, the rest succeed with well-formed results — so the
// replay's taxonomy buckets have exact expected counts regardless of request
// interleaving.
func faultScript(t *testing.T, stallFor time.Duration) http.Handler {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/detect/batch" {
			io.WriteString(w, "{}") // stats reset / models snapshot housekeeping
			return
		}
		var req core.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad batch request: %v", err)
		}
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusInternalServerError)
		case 3:
			panic(http.ErrAbortHandler)
		case 4:
			select {
			case <-time.After(stallFor):
			case <-r.Context().Done():
			}
			w.WriteHeader(http.StatusGatewayTimeout)
		default:
			results := make([]core.DetectResponse, len(req.Sentences))
			json.NewEncoder(w).Encode(core.BatchResponse{Results: results, Degraded: true})
		}
	})
}

// TestReplayFailureTaxonomy drives a replay into one failure of each kind
// and checks every bucket — and that degraded successes are tallied, and
// that a fault window yields phase-partitioned latencies.
func TestReplayFailureTaxonomy(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	hs := httptest.NewServer(faultScript(t, 5*time.Second))
	defer hs.Close()

	cfg := replayCfg(hs.URL)
	cfg.Timeout = 300 * time.Millisecond // the scripted stall overshoots this
	cfg.FaultWindow = faults.Window{Start: time.Millisecond, End: 2 * time.Millisecond}
	res, err := Replay(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Errors != 4 {
		t.Fatalf("errors = %d, want the 4 scripted failures", res.Errors)
	}
	want := Failures{Timeout: 1, Shed: 1, Server: 1, Transport: 1}
	if res.Failures != want {
		t.Fatalf("failures = %+v, want %+v", res.Failures, want)
	}
	if res.Failures.Total() != res.Errors {
		t.Fatalf("taxonomy total %d != errors %d", res.Failures.Total(), res.Errors)
	}
	if res.DegradedReqs != res.Requests-4 {
		t.Fatalf("degraded reqs = %d, want all %d successes", res.DegradedReqs, res.Requests-4)
	}
	if res.Phases == nil {
		t.Fatal("fault window set but Phases nil")
	}

	// The report row surfaces the taxonomy and phase columns.
	extra := res.Entry("sft").Extra
	for _, key := range []string{
		"err_timeout", "err_shed", "err_server", "err_transport",
		"degraded_reqs", "pre_p99_ms", "during_p99_ms", "post_p99_ms",
	} {
		if _, ok := extra[key]; !ok {
			t.Errorf("report row missing %q", key)
		}
	}
	if extra["err_timeout"] != 1 || extra["err_shed"] != 1 {
		t.Errorf("report taxonomy wrong: %v", extra)
	}
}

// TestReplayCleanRowKeepsShape checks a clean replay emits no overload
// columns, so historical BENCH diffs stay aligned.
func TestReplayCleanRowKeepsShape(t *testing.T) {
	res := &Result{Scenario: "steady", Events: 10, Requests: 10}
	extra := res.Entry("sft").Extra
	for _, key := range []string{"err_timeout", "degraded_reqs", "pre_p99_ms"} {
		if _, ok := extra[key]; ok {
			t.Errorf("clean row grew column %q", key)
		}
	}
}

// TestReplayRetryRecoversShed wires the resilience client into a replay
// against a server that sheds every request once: with retries enabled no
// request fails, and the retry counters show the recovery work.
func TestReplayRetryRecoversShed(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	var mu sync.Mutex
	seen := map[string]bool{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/detect/batch" {
			io.WriteString(w, "{}")
			return
		}
		var req core.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad batch request: %v", err)
		}
		key := ""
		if len(req.Sentences) > 0 {
			key = req.Sentences[0]
		}
		mu.Lock()
		first := !seen[key]
		seen[key] = true
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After-Ms", "5")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(core.BatchResponse{Results: make([]core.DetectResponse, len(req.Sentences))})
	}))
	defer hs.Close()

	cfg := replayCfg(hs.URL)
	cfg.Retry = &resilience.Client{Policy: resilience.Policy{
		MaxAttempts: 3, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Multiplier: 2, Seed: 9,
	}}
	res, err := Replay(context.Background(), s, cfg)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d with retries on, failures %+v", res.Errors, res.Failures)
	}
	// Streams may repeat sentences across requests (one shed covers them
	// all), so assert the retry machinery ran, not an exact count.
	if got := cfg.Retry.RetriesSent.Load(); got == 0 {
		t.Fatal("no retries sent despite universal first-attempt sheds")
	}
}
