package scenario

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// oracleDetector answers with the stream's own ground truth: a perfect
// detector that needs no training, so replay plumbing and quality scoring can
// be verified exactly (AUC 1, line F1 1, trace F1 1).
type oracleDetector struct {
	labels map[string]int
}

func newOracle(streams ...*Stream) *oracleDetector {
	o := &oracleDetector{labels: map[string]int{}}
	for _, s := range streams {
		for _, ev := range s.Events {
			o.labels[logparse.Sentence(ev.Job)] = ev.Job.Label
		}
	}
	return o
}

func (o *oracleDetector) DetectSentence(s string) core.Result {
	if o.labels[s] == 1 {
		return core.Result{Label: 1, Score: 0.9}
	}
	return core.Result{Label: 0, Score: 0.1}
}

func (o *oracleDetector) DetectBatch(ss []string) []core.Result {
	out := make([]core.Result, len(ss))
	for i, s := range ss {
		out[i] = o.DetectSentence(s)
	}
	return out
}

func (o *oracleDetector) DetectJob(j flowbench.Job) core.Result {
	return o.DetectSentence(logparse.Sentence(j))
}

func (o *oracleDetector) Approach() core.Approach { return core.SFT }

func replayCfg(url string) ReplayConfig {
	return ReplayConfig{BaseURL: url, Speed: 1000, Timeout: 10 * time.Second}
}

func TestReplayOracleScoresPerfectly(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	srv := core.NewServerWith(newOracle(s), core.BatchConfig{MaxBatch: 64, Workers: 2})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	res, err := Replay(context.Background(), s, replayCfg(hs.URL))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Scenario != "steady" || res.Events != len(s.Events) {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d failed requests", res.Errors)
	}
	if res.Quality.AUC != 1 || res.Quality.LineF1 != 1 {
		t.Errorf("oracle should be perfect per line: AUC=%v F1=%v", res.Quality.AUC, res.Quality.LineF1)
	}
	if res.Quality.TraceF1 != 1 {
		t.Errorf("oracle should be perfect per trace: TraceF1=%v", res.Quality.TraceF1)
	}
	if res.LinesPerSec <= 0 || res.WallSeconds <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
	if res.ClientP99Ms < res.ClientP50Ms {
		t.Errorf("latency percentiles inverted: p50=%v p99=%v", res.ClientP50Ms, res.ClientP99Ms)
	}
	if res.Server.Requests == 0 || res.Server.Sentences != int64(res.Events) {
		t.Errorf("server stats not collected: %+v", res.Server)
	}
}

func TestReplayNearDupExercisesDedup(t *testing.T) {
	d, _ := Lookup("near-dup")
	s := d.Generate(tinyCfg())
	srv := core.NewServerWith(newOracle(s), core.BatchConfig{MaxBatch: 64, Workers: 2})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	res, err := Replay(context.Background(), s, replayCfg(hs.URL))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d failed requests", res.Errors)
	}
	if res.Server.DedupSaved == 0 {
		t.Error("near-dup replay should hit the sentence-dedup coalescer, DedupSaved = 0")
	}
	if res.Quality.AUC != 1 {
		t.Errorf("oracle AUC = %v on near-dup", res.Quality.AUC)
	}
}

func TestReplayMonitorReportsTraffic(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	srv := core.NewServerWith(newOracle(s), core.BatchConfig{MaxBatch: 64, Workers: 2})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	res, err := ReplayMonitor(context.Background(), s, replayCfg(hs.URL))
	if err != nil {
		t.Fatalf("ReplayMonitor: %v", err)
	}
	if res.Report.Processed != len(s.Events) {
		t.Errorf("monitor processed %d of %d lines", res.Report.Processed, len(s.Events))
	}
	if res.Report.Malformed != 0 {
		t.Errorf("%d malformed lines", res.Report.Malformed)
	}
	if res.Report.Alerts == 0 {
		t.Error("oracle over an anomalous stream should raise alerts")
	}
	if res.Report.FlaggedTraces == 0 {
		t.Error("expected at least one flagged trace")
	}
}

func TestReplayCancellation(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	srv := core.NewServerWith(newOracle(s), core.BatchConfig{MaxBatch: 64, Workers: 1})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := replayCfg(hs.URL)
	cfg.Speed = 1 // real-time: without cancellation this would take seconds
	if _, err := Replay(ctx, s, cfg); err == nil {
		t.Fatal("cancelled replay should return an error")
	}
}

func TestEvaluateScoresMatchesOracle(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	scores := make([]float64, len(s.Events))
	preds := make([]int, len(s.Events))
	for i, ev := range s.Events {
		preds[i] = ev.Job.Label
		scores[i] = float64(ev.Job.Label)
	}
	q := EvaluateScores(s, scores, preds, core.TracePolicy{})
	if q.AUC != 1 || q.LineF1 != 1 || q.TraceF1 != 1 {
		t.Errorf("perfect scores should yield perfect quality: %+v", q)
	}

	// Inverted predictions should crater every metric.
	for i := range preds {
		preds[i] = 1 - preds[i]
		scores[i] = 1 - scores[i]
	}
	q = EvaluateScores(s, scores, preds, core.TracePolicy{})
	if q.AUC != 0 || q.LineF1 != 0 {
		t.Errorf("inverted scores should yield zero quality: %+v", q)
	}
}

func TestBenchReportWrite(t *testing.T) {
	r := &BenchReport{
		Recorded: "2026-01-01T00:00:00Z",
		CPU:      "test",
		Command:  "loadlab",
		Entries: []BenchEntry{
			{Name: "LoadLab/steady/sft", NsPerOp: 1234.5, Extra: map[string]float64{"roc_auc": 0.9876, "events": 400}},
			{Name: "LoadLab/steady/pca", NsPerOp: 10},
		},
	}
	var sb benchBuffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `{
  "recorded": "2026-01-01T00:00:00Z",
  "cpu": "test",
  "command": "loadlab",
  "benchmarks": [
    {"name": "LoadLab/steady/sft", "ns_per_op": 1234, "b_per_op": 0, "allocs_per_op": 0, "extra": {"events": 400, "roc_auc": 0.9876}},
    {"name": "LoadLab/steady/pca", "ns_per_op": 10, "b_per_op": 0, "allocs_per_op": 0}
  ]
}
`
	if got != want {
		t.Errorf("report layout drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

type benchBuffer struct{ b []byte }

func (s *benchBuffer) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *benchBuffer) String() string              { return string(s.b) }
