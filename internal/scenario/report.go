package scenario

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BenchEntry is one row of a BENCH_N.json report — the shape
// scripts/benchjson.awk produces from `go test -bench` output, which
// scripts/benchdiff consumes. The load lab emits one entry per
// scenario × detector, with ns_per_op carrying nanoseconds per line (so
// throughput deltas diff like kernel benchmarks) and the quality and
// saturation measurements under "extra".
type BenchEntry struct {
	Name        string
	NsPerOp     float64
	BPerOp      int64
	AllocsPerOp int64
	Extra       map[string]float64
}

// BenchReport is a BENCH_N.json document.
type BenchReport struct {
	Recorded string // RFC3339 UTC timestamp
	CPU      string
	Command  string
	Entries  []BenchEntry
}

// Write renders the report in the exact layout of the repo's recorded
// BENCH files: one benchmark per line, extra keys sorted.
func (r *BenchReport) Write(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\n")
	fmt.Fprintf(&sb, "  %q: %q,\n", "recorded", r.Recorded)
	fmt.Fprintf(&sb, "  %q: %q,\n", "cpu", r.CPU)
	fmt.Fprintf(&sb, "  %q: %q,\n", "command", r.Command)
	sb.WriteString("  \"benchmarks\": [\n")
	for i, e := range r.Entries {
		fmt.Fprintf(&sb, "    {\"name\": %q, \"ns_per_op\": %.0f, \"b_per_op\": %d, \"allocs_per_op\": %d",
			e.Name, e.NsPerOp, e.BPerOp, e.AllocsPerOp)
		if len(e.Extra) > 0 {
			keys := make([]string, 0, len(e.Extra))
			for k := range e.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString(", \"extra\": {")
			for j, k := range keys {
				if j > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%q: %s", k, formatExtra(e.Extra[k]))
			}
			sb.WriteString("}")
		}
		sb.WriteString("}")
		if i < len(r.Entries)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  ]\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// formatExtra renders a value compactly: integers without decimals, metrics
// with four.
func formatExtra(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// Entry converts a batch-replay result into its report row.
func (r *Result) Entry(detector string) BenchEntry {
	nsPerLine := 0.0
	if r.Events > 0 {
		nsPerLine = r.WallSeconds * 1e9 / float64(r.Events)
	}
	e := BenchEntry{
		Name:    fmt.Sprintf("LoadLab/%s/%s", r.Scenario, detector),
		NsPerOp: nsPerLine,
		Extra: map[string]float64{
			"events":            float64(r.Events),
			"requests":          float64(r.Requests),
			"errors":            float64(r.Errors),
			"lines_per_sec":     r.LinesPerSec,
			"client_p50_ms":     r.ClientP50Ms,
			"client_p99_ms":     r.ClientP99Ms,
			"queue_wait_p50_ms": r.Server.QueueWaitP50Ms,
			"queue_wait_p99_ms": r.Server.QueueWaitP99Ms,
			"compute_p50_ms":    r.Server.ComputeP50Ms,
			"compute_p99_ms":    r.Server.ComputeP99Ms,
			"max_queue_len":     float64(r.Server.MaxQueueLen),
			"dedup_saved":       float64(r.Server.DedupSaved),
			"batch_occupancy":   r.Server.BatchOccupancy,
			"roc_auc":           r.Quality.AUC,
			"avg_precision":     r.Quality.AP,
			"line_f1":           r.Quality.LineF1,
			"trace_f1":          r.Quality.TraceF1,
		},
	}
	// Overload and chaos columns appear only on runs that exercised them, so
	// clean rows keep their historical shape and diff cleanly against old
	// BENCH files.
	if r.Errors > 0 || r.DegradedReqs > 0 || r.Server.Shed+r.Server.Expired+r.Server.Degraded > 0 {
		e.Extra["err_timeout"] = float64(r.Failures.Timeout)
		e.Extra["err_shed"] = float64(r.Failures.Shed)
		e.Extra["err_server"] = float64(r.Failures.Server)
		e.Extra["err_transport"] = float64(r.Failures.Transport)
		e.Extra["degraded_reqs"] = float64(r.DegradedReqs)
		e.Extra["server_shed"] = float64(r.Server.Shed)
		e.Extra["server_expired"] = float64(r.Server.Expired)
		e.Extra["server_degraded"] = float64(r.Server.Degraded)
	}
	if r.Phases != nil {
		e.Extra["pre_p99_ms"] = r.Phases.PreP99Ms
		e.Extra["during_p99_ms"] = r.Phases.DuringP99Ms
		e.Extra["post_p99_ms"] = r.Phases.PostP99Ms
		e.Extra["recovery_ms"] = r.Phases.RecoveryMs
	}
	// Cascade columns appear only when the stage-1 gate actually evaluated
	// traffic, so cascade-off rows keep their historical shape.
	if r.Server.CascadeEvaluated > 0 {
		e.Extra["cascade_evaluated"] = float64(r.Server.CascadeEvaluated)
		e.Extra["cascade_short_circuited"] = float64(r.Server.CascadeShort)
		e.Extra["cascade_pass_fraction"] = r.Server.CascadePassFraction
	}
	return e
}

// Entry converts a monitor-replay result into its report row.
func (m *MonitorResult) Entry(detector string) BenchEntry {
	nsPerLine := 0.0
	if m.Events > 0 {
		nsPerLine = m.WallSeconds * 1e9 / float64(m.Events)
	}
	e := BenchEntry{
		Name:    fmt.Sprintf("LoadLabMonitor/%s/%s", m.Scenario, detector),
		NsPerOp: nsPerLine,
		Extra: map[string]float64{
			"events":         float64(m.Events),
			"lines_per_sec":  m.LinesPerSec,
			"alerts":         float64(m.Report.Alerts),
			"flagged_traces": float64(m.Report.FlaggedTraces),
			"malformed":      float64(m.Report.Malformed),
		},
	}
	if m.Report.CascadeEvaluated > 0 {
		e.Extra["cascade_evaluated"] = float64(m.Report.CascadeEvaluated)
		e.Extra["cascade_short_circuited"] = float64(m.Report.CascadeShort)
	}
	return e
}
