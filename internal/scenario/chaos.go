package scenario

import (
	"strings"
	"time"

	"repro/internal/faults"
)

// chaosPrefix marks a chaos variant of a base scenario: same generated
// stream (identical events, identical golden hash), perturbed at the
// transport by a deterministic fault campaign during the middle of the
// replay.
const chaosPrefix = "chaos-"

// ChaosName returns the chaos variant name of a base scenario.
func ChaosName(base string) string { return chaosPrefix + base }

// SplitChaos splits a scenario name into its base scenario and whether it is
// a chaos variant. "chaos-bursty" replays the "bursty" stream behind a
// faults.Injector armed with ChaosPlan; "bursty" replays it clean.
func SplitChaos(name string) (base string, chaos bool) {
	if strings.HasPrefix(name, chaosPrefix) {
		return strings.TrimPrefix(name, chaosPrefix), true
	}
	return name, false
}

// ChaosPlan derives the deterministic fault campaign for replaying s at
// speed. The fault window covers the middle third of the compressed
// schedule, leaving a clean head to establish the pre-fault baseline and a
// clean tail to measure recovery — pass the same window as
// ReplayConfig.FaultWindow so Result.Phases lines up with the campaign.
//
// Every 4th detect request inside the window is perturbed, drawn from the
// latency/error/reset palette. Stall is deliberately left out of the replay
// palette: its multi-second holds would dominate a seconds-scale lab run;
// `anomalyd -faults` drills cover it.
func ChaosPlan(s *Stream, speed float64, seed uint64) faults.Config {
	if speed <= 0 {
		speed = 1
	}
	d := time.Duration(float64(s.Duration()) / speed)
	return faults.Config{
		Seed:    seed ^ nameSeed(ChaosName(s.Name)),
		Every:   4,
		Kinds:   []faults.Kind{faults.Latency, faults.Error, faults.Reset},
		Latency: 80 * time.Millisecond,
		Window:  faults.Window{Start: d / 3, End: 2 * d / 3},
		Path:    "/v1/detect",
	}
}
