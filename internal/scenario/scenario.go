// Package scenario defines named, seeded, fully deterministic generators of
// labeled log traffic with arrival-time schedules — the workloads the load
// lab (cmd/loadlab) replays against a serving anomalyd. A scenario turns
// Flow-Bench's DAG/anomaly machinery into a *stream*: each event is one log
// line in the wire format the server ingests, carrying its ground-truth job
// (label, anomaly class, trace identity) and the instant it should arrive.
// Replay is open-loop — events are sent on schedule regardless of how the
// server is keeping up — so queueing behaviour is visible instead of being
// absorbed by client backpressure.
//
// Determinism is a hard contract: the same scenario name, seed, and config
// produce byte-identical events (pinned by golden-file tests), so recorded
// BENCH reports are comparable across commits and a replay is exactly
// repeatable. Everything stochastic draws from tensor.RNG, schedules use
// integer arithmetic on durations, and no wall clock or map iteration leaks
// into generation.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/tensor"
)

// Event is one scheduled log line with its ground truth.
type Event struct {
	// At is the scheduled arrival offset from stream start. Events sharing
	// an At form a burst and are sent in one request.
	At time.Duration
	// Line is the raw key=value wire form (logparse.LogLine of Job).
	Line string
	// Job is the ground-truth job behind the line: label, anomaly class,
	// trace identity, and the feature vector baselines score directly.
	Job flowbench.Job
}

// Stream is a fully generated scenario: the replayable event sequence.
// Events are ordered by non-decreasing At.
type Stream struct {
	Name   string
	Seed   uint64
	Events []Event
}

// Config parameterizes scenario generation. The zero value is usable: every
// field has a default (see fill).
type Config struct {
	// Workflow selects the Flow-Bench workflow traffic is drawn from
	// (default Genome).
	Workflow flowbench.Workflow
	// Events is the stream length (default 2000).
	Events int
	// Seed drives both the underlying dataset and the schedule (default 42).
	Seed uint64
	// Rate is the mean arrival rate in lines/sec at replay speed 1
	// (default 400).
	Rate float64
}

func (c *Config) fill() {
	if c.Workflow == "" {
		c.Workflow = flowbench.Genome
	}
	if c.Events <= 0 {
		c.Events = 2000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Rate <= 0 {
		c.Rate = 400
	}
}

// Def is one registered scenario.
type Def struct {
	// Name is the command-line identifier ("steady", "bursty", ...).
	Name string
	// Description summarizes the traffic shape and what it stresses.
	Description string

	gen func(*gen)
}

// All lists the built-in scenarios in taxonomy order (docs/SCENARIOS.md).
func All() []Def {
	return []Def{
		{"steady", "steady open-loop baseline: jittered arrivals at the nominal rate over 8 interleaved executions", genSteady},
		{"bursty", "long quiet gaps punctuated by 8–64-line same-instant bursts, so queue depth saturates visibly", genBursty},
		{"trace-heavy", "two concurrent executions emitting long contiguous runs — deep traces through the online tracker", genTraceHeavy},
		{"line-heavy", "many executions touched a few lines each — partial traces and tracker LRU churn", genLineHeavy},
		{"drift", "anomaly-free first half, then anomalous traces under a ramping covariate drift — detection quality decays in-stream", genDrift},
		{"near-dup", "each line arrives with same-instant exact and near duplicates, stressing the sentence-dedup coalescer", genNearDup},
	}
}

// Names returns the scenario names in All order.
func Names() []string {
	defs := All()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Name
	}
	return out
}

// Lookup finds a scenario by name.
func Lookup(name string) (Def, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}

// Generate produces the scenario's stream for cfg. Identical (name, cfg)
// yield byte-identical streams.
func (d Def) Generate(cfg Config) *Stream {
	g := newGen(d.Name, cfg)
	d.gen(g)
	return g.stream()
}

// Labels returns the per-event ground-truth labels (0 normal, 1 anomalous).
func (s *Stream) Labels() []int {
	out := make([]int, len(s.Events))
	for i, ev := range s.Events {
		out[i] = ev.Job.Label
	}
	return out
}

// Sentences renders every event as the parsed feature sentence the detection
// endpoints consume.
func (s *Stream) Sentences() []string {
	out := make([]string, len(s.Events))
	for i, ev := range s.Events {
		out[i] = logparse.Sentence(ev.Job)
	}
	return out
}

// Duration is the schedule length: the last event's arrival offset.
func (s *Stream) Duration() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// AnomalyRate is the ground-truth anomalous fraction of the stream.
func (s *Stream) AnomalyRate() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	n := 0
	for _, ev := range s.Events {
		n += ev.Job.Label
	}
	return float64(n) / float64(len(s.Events))
}

// TraceTruth applies policy to the ground-truth labels of the events each
// trace actually emitted, answering "would this trace be flagged under
// perfect per-line detection?" — the reference the lab scores trace verdicts
// against. Keys are trace IDs present in the stream.
func (s *Stream) TraceTruth(policy core.TracePolicy) map[int]bool {
	jobs := make(map[int]int)
	anom := make(map[int]int)
	for _, ev := range s.Events {
		jobs[ev.Job.TraceID]++
		anom[ev.Job.TraceID] += ev.Job.Label
	}
	out := make(map[int]bool, len(jobs))
	for id, n := range jobs {
		out[id] = policy.Flagged(n, anom[id])
	}
	return out
}

// Hash returns a SHA-256 digest of the stream's canonical serialization
// (arrival offset, line, label per event) — the quantity the golden-file
// determinism tests pin.
func (s *Stream) Hash() string {
	h := sha256.New()
	for _, ev := range s.Events {
		h.Write([]byte(strconv.FormatInt(int64(ev.At), 10)))
		h.Write([]byte{'\t'})
		h.Write([]byte(ev.Line))
		h.Write([]byte{'\t'})
		h.Write([]byte(strconv.Itoa(ev.Job.Label)))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// gen is the shared generator state scenario functions build streams with.
type gen struct {
	cfg    Config
	name   string
	rng    *tensor.RNG
	pool   [][]flowbench.Job // complete executions in seeded order
	next   int               // next pool trace to activate
	clock  time.Duration
	events []Event
}

func newGen(name string, cfg Config) *gen {
	cfg.fill()
	g := &gen{cfg: cfg, name: name, rng: tensor.NewRNG(cfg.Seed ^ nameSeed(name))}
	g.pool = tracePool(cfg, g.rng)
	return g
}

// nameSeed mixes the scenario name into the seed so every scenario draws
// distinct traffic from the same configured seed.
func nameSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// tracePool regenerates the workflow's Flow-Bench dataset and regroups it
// into complete executions (the splits shuffle jobs across traces), in an
// order shuffled by rng. Map iteration never reaches the output: trace IDs
// are sorted before the seeded permutation is applied.
func tracePool(cfg Config, rng *tensor.RNG) [][]flowbench.Job {
	ds := flowbench.Generate(cfg.Workflow, cfg.Seed)
	byTrace := flowbench.TraceJobs(ds.Jobs())
	ids := make([]int, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pool := make([][]flowbench.Job, len(ids))
	for i, p := range rng.Perm(len(ids)) {
		pool[i] = byTrace[ids[p]]
	}
	return pool
}

// takeTrace activates the next pool execution, cycling if a scenario ever
// outruns the dataset.
func (g *gen) takeTrace() []flowbench.Job {
	t := g.pool[g.next%len(g.pool)]
	g.next++
	return t
}

// emit appends one event at the current clock.
func (g *gen) emit(j flowbench.Job) {
	g.events = append(g.events, Event{At: g.clock, Line: logparse.LogLine(j), Job: j})
}

func (g *gen) full() bool { return len(g.events) >= g.cfg.Events }

// meanGap is the nominal inter-arrival interval at Config.Rate.
func (g *gen) meanGap() time.Duration {
	mean := time.Duration(float64(time.Second) / g.cfg.Rate)
	if mean <= 0 {
		mean = time.Microsecond
	}
	return mean
}

// tick advances the clock by one jittered inter-arrival gap: uniform in
// [mean/2, 3·mean/2], so the average rate is Config.Rate. Integer duration
// arithmetic keeps schedules bit-identical across platforms.
func (g *gen) tick() { g.advance(g.meanGap()) }

// pause advances the clock by a jittered gap of mult nominal intervals — the
// quiet period between bursts.
func (g *gen) pause(mult int) { g.advance(g.meanGap() * time.Duration(mult)) }

func (g *gen) advance(mean time.Duration) {
	g.clock += mean/2 + time.Duration(g.rng.Intn(int(mean)+1))
}

func (g *gen) stream() *Stream {
	return &Stream{Name: g.name, Seed: g.cfg.Seed, Events: g.events}
}

// slots interleaves k concurrently executing traces, refilling each slot
// from pool (falling back to the generator's shared pool cursor) as
// executions complete — the shape of a workflow engine running k DAGs at
// once.
type slots struct {
	g   *gen
	cur [][]flowbench.Job // remaining jobs per slot
}

func (g *gen) newSlots(k int) *slots {
	return &slots{g: g, cur: make([][]flowbench.Job, k)}
}

// take pops the next job of slot i, activating a fresh execution when the
// slot's current one is exhausted.
func (s *slots) take(i int) flowbench.Job {
	if len(s.cur[i]) == 0 {
		s.cur[i] = s.g.takeTrace()
	}
	j := s.cur[i][0]
	s.cur[i] = s.cur[i][1:]
	return j
}
