package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// tinyCfg keeps unit tests fast. Seed 6 is chosen so every scenario's
// 400-event prefix contains both classes (anomaly segments sit at random
// positions inside traces, so short prefixes of unlucky seeds can be all
// normal).
func tinyCfg() Config {
	return Config{Workflow: flowbench.Sales, Events: 400, Seed: 6, Rate: 2000}
}

func TestAllScenariosGenerate(t *testing.T) {
	defs := All()
	if len(defs) < 5 {
		t.Fatalf("need at least 5 scenarios, have %d", len(defs))
	}
	for _, d := range defs {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			s := d.Generate(tinyCfg())
			if len(s.Events) != 400 {
				t.Fatalf("got %d events, want 400", len(s.Events))
			}
			if s.Name != d.Name {
				t.Errorf("stream name %q, want %q", s.Name, d.Name)
			}
			last := s.Events[0].At
			anom := 0
			for i, ev := range s.Events {
				if ev.At < last {
					t.Fatalf("event %d: At %v < previous %v (schedule must be non-decreasing)", i, ev.At, last)
				}
				last = ev.At
				if got := logparse.LogLine(ev.Job); ev.Line != got {
					t.Fatalf("event %d: Line does not round-trip its Job", i)
				}
				anom += ev.Job.Label
			}
			if anom == 0 || anom == len(s.Events) {
				t.Errorf("stream has degenerate anomaly count %d/%d", anom, len(s.Events))
			}
			if s.Duration() <= 0 {
				t.Error("stream duration should be positive")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("steady"); err != nil {
		t.Fatalf("Lookup(steady): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup(nope): expected error")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All length mismatch")
	}
}

func TestBurstyHasSameInstantBursts(t *testing.T) {
	d, _ := Lookup("bursty")
	s := d.Generate(tinyCfg())
	best := 0
	run := 1
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At == s.Events[i-1].At {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	if best < 8 {
		t.Errorf("largest same-instant burst is %d lines, want >= 8", best)
	}
}

func TestNearDupEmitsDuplicates(t *testing.T) {
	d, _ := Lookup("near-dup")
	s := d.Generate(tinyCfg())
	exact, near := 0, 0
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At != s.Events[i-1].At {
			continue
		}
		a, b := s.Events[i-1], s.Events[i]
		if logparse.Sentence(a.Job) == logparse.Sentence(b.Job) {
			exact++
		} else if a.Job.TraceID == b.Job.TraceID && a.Job.NodeIndex == b.Job.NodeIndex {
			near++
		}
	}
	if exact == 0 {
		t.Error("near-dup stream has no same-instant exact duplicates")
	}
	if near == 0 {
		t.Error("near-dup stream has no same-instant near duplicates")
	}
}

func TestDriftHalvesDiffer(t *testing.T) {
	d, _ := Lookup("drift")
	s := d.Generate(tinyCfg())
	half := len(s.Events) / 2
	for i, ev := range s.Events[:half] {
		if ev.Job.Label != 0 {
			t.Fatalf("event %d in clean half has label %d", i, ev.Job.Label)
		}
	}
	anom := 0
	for _, ev := range s.Events[half:] {
		anom += ev.Job.Label
	}
	if anom == 0 {
		t.Error("drift second half has no anomalies")
	}
}

func TestLineHeavyTouchesMoreTraces(t *testing.T) {
	traces := func(name string) int {
		d, _ := Lookup(name)
		s := d.Generate(tinyCfg())
		seen := map[int]bool{}
		for _, ev := range s.Events {
			seen[ev.Job.TraceID] = true
		}
		return len(seen)
	}
	lh, th := traces("line-heavy"), traces("trace-heavy")
	if lh <= th {
		t.Errorf("line-heavy touched %d traces, trace-heavy %d; want line-heavy > trace-heavy", lh, th)
	}
}

func TestTraceTruthUsesPolicy(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	truth := s.TraceTruth(core.DefaultTracePolicy())
	if len(truth) == 0 {
		t.Fatal("no traces in truth map")
	}
	flagged := 0
	for _, v := range truth {
		if v {
			flagged++
		}
	}
	if flagged == 0 || flagged == len(truth) {
		t.Errorf("degenerate trace truth: %d/%d flagged", flagged, len(truth))
	}
	// Strict policy flags nothing.
	none := s.TraceTruth(core.TracePolicy{MinAnomalous: 1 << 30, MinFraction: 1})
	for id, v := range none {
		if v {
			t.Fatalf("trace %d flagged under impossible policy", id)
		}
	}
}

func TestSentencesMatchServingInput(t *testing.T) {
	d, _ := Lookup("steady")
	s := d.Generate(tinyCfg())
	sents := s.Sentences()
	if len(sents) != len(s.Events) {
		t.Fatal("Sentences length mismatch")
	}
	for i, sent := range sents[:20] {
		if strings.Contains(sent, "label=") || strings.Contains(sent, "anomaly=") {
			t.Fatalf("sentence %d leaks ground truth: %q", i, sent)
		}
	}
}
