package scenario

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/flowbench"
)

var updateGolden = flag.Bool("update", false, "rewrite golden scenario hashes")

// goldenCfg is the pinned configuration: changing it (or any generator code
// path) invalidates the recorded hashes, which is the point — determinism
// regressions fail loudly instead of silently shifting benchmark traffic.
func goldenCfg() Config {
	return Config{Workflow: flowbench.Genome, Events: 500, Seed: 42, Rate: 400}
}

const goldenPath = "testdata/golden.txt"

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden file (run `go test ./internal/scenario -run Golden -update` to create): %v", err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	return out
}

func writeGolden(t *testing.T, hashes map[string]string) {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("# SHA-256 of each scenario stream at Genome/500 events/seed 42/rate 400.\n")
	buf.WriteString("# Regenerate with: go test ./internal/scenario -run Golden -update\n")
	for _, d := range All() {
		fmt.Fprintf(&buf, "%s %s\n", d.Name, hashes[d.Name])
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenHashes pins generation: identical seed must produce byte-identical
// traffic and labels across runs, platforms, and commits.
func TestGoldenHashes(t *testing.T) {
	got := map[string]string{}
	for _, d := range All() {
		got[d.Name] = d.Generate(goldenCfg()).Hash()
	}
	if *updateGolden {
		writeGolden(t, got)
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want := readGolden(t)
	for _, d := range All() {
		if want[d.Name] == "" {
			t.Errorf("%s: no golden hash recorded (rerun with -update)", d.Name)
			continue
		}
		if got[d.Name] != want[d.Name] {
			t.Errorf("%s: hash %s != golden %s — generation is no longer deterministic or the generator changed (rerun with -update if intentional)",
				d.Name, got[d.Name], want[d.Name])
		}
	}
}

// TestGenerationIndependentOfGOMAXPROCS re-generates every scenario under a
// different parallelism setting and demands identical hashes: no scheduling
// or map-iteration nondeterminism may reach the stream.
func TestGenerationIndependentOfGOMAXPROCS(t *testing.T) {
	base := map[string]string{}
	for _, d := range All() {
		base[d.Name] = d.Generate(goldenCfg()).Hash()
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, d := range All() {
		if h := d.Generate(goldenCfg()).Hash(); h != base[d.Name] {
			t.Errorf("%s: hash changed under GOMAXPROCS=1", d.Name)
		}
	}
}

// TestRepeatedGenerationIsIdentical checks run-to-run determinism including
// the full event contents, not just the hash.
func TestRepeatedGenerationIsIdentical(t *testing.T) {
	for _, d := range All() {
		a := d.Generate(goldenCfg())
		b := d.Generate(goldenCfg())
		if len(a.Events) != len(b.Events) {
			t.Fatalf("%s: event counts differ", d.Name)
		}
		for i := range a.Events {
			if a.Events[i].At != b.Events[i].At || a.Events[i].Line != b.Events[i].Line {
				t.Fatalf("%s: event %d differs between runs", d.Name, i)
			}
		}
	}
}

// TestSeedsDisjoint makes sure different seeds and different scenarios do not
// accidentally share traffic.
func TestSeedsDisjoint(t *testing.T) {
	d, _ := Lookup("steady")
	cfg := goldenCfg()
	h1 := d.Generate(cfg).Hash()
	cfg.Seed = 43
	if d.Generate(cfg).Hash() == h1 {
		t.Error("different seeds produced identical streams")
	}
	other, _ := Lookup("bursty")
	cfg.Seed = 42
	if other.Generate(cfg).Hash() == h1 {
		t.Error("different scenarios produced identical streams")
	}
}
