// Quickstart: the minimal end-to-end pipeline — generate a Flow-Bench-style
// dataset, pre-train a small encoder on unlabeled log sentences, fine-tune it
// for anomaly classification, and classify a few jobs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/sft"
	"repro/internal/tokenizer"
)

func main() {
	// 1. Data: the 1000 Genome workflow, subsampled to laptop scale.
	ds := flowbench.Generate(flowbench.Genome, 42).Subsample(800, 100, 200, 1)
	fmt.Printf("dataset: %d train / %d val / %d test jobs (%.1f%% anomalous)\n",
		len(ds.Train), len(ds.Val), len(ds.Test), 100*ds.Stats()[0].Fraction())

	// 2. Vocabulary + pre-trained checkpoint (MLM over unlabeled sentences).
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	model := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	fmt.Printf("model: distilbert-base-uncased (%d params, vocab %d)\n", model.ParamCount(), tok.VocabSize())
	pretrain.MLM(model, tok, corpus, pretrain.Options{Steps: 300, LR: 3e-3, Seed: 2})

	// 3. Supervised fine-tuning for sentence classification.
	clf := sft.NewClassifier(model, tok)
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.ValEvery = 1
	for _, st := range sft.Train(clf, sft.JobExamples(ds.Train), sft.JobExamples(ds.Val), cfg) {
		fmt.Printf("epoch %d: train_loss=%.4f val_acc=%.4f\n", st.Epoch, st.TrainLoss, st.Val.Accuracy)
	}

	// 4. Evaluate and classify a few jobs.
	fmt.Printf("test: %s\n", sft.Evaluate(clf, ds.Test))
	for _, j := range ds.Test[:3] {
		pred, probs := clf.PredictJob(j)
		fmt.Printf("  %q -> %s (p=%.2f, true %s)\n",
			truncate(logparse.Sentence(j), 60), logparse.LabelWord(pred),
			probs[pred], logparse.LabelWord(j.Label))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
