// Chain-of-thought: few-shot in-context anomaly detection with a decoder
// model, quantized LoRA fine-tuning, and an interpretable step-by-step
// classification — the paper's ICL pipeline (Table III, Figure 13).
//
//	go run ./examples/cot
package main

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/tokenizer"
)

func main() {
	ds := flowbench.Generate(flowbench.Genome, 42).Subsample(800, 100, 120, 1)
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)

	model := models.MustGet("mistral").Build(tok.VocabSize())
	fmt.Printf("pre-training mistral (%d params) with next-token prediction...\n", model.ParamCount())
	pretrain.CLM(model, tok, corpus, pretrain.Options{Steps: 400, LR: 3e-3, Seed: 2})
	det := icl.NewDetector(model, tok)

	// Zero-shot vs few-shot before fine-tuning.
	test := ds.Test[:60]
	zero := icl.Evaluate(det, test, nil)
	few := icl.Evaluate(det, test, icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, 3)))
	fmt.Printf("zero-shot acc=%.4f | 5-shot mixed acc=%.4f\n", zero.Accuracy(), few.Accuracy())

	// Quantized LoRA fine-tuning (the paper's BitsAndBytes + LoRA recipe).
	cfg := icl.DefaultFineTuneConfig()
	cfg.Steps = 300
	res := icl.FineTune(det, ds.Train, cfg)
	fmt.Printf("LoRA: %d/%d trainable params (%.2f%%); base 4-bit: %d B vs %d B fp32\n",
		res.TrainableParams, res.TotalParams, 100*res.TrainableFraction(),
		res.QuantBytes, res.FP32Bytes)
	fewFT := icl.Evaluate(det, test, icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, 3)))
	fmt.Printf("after fine-tuning: 5-shot mixed acc=%.4f\n\n", fewFT.Accuracy())

	// Chain-of-thought classification of one query.
	ctx := icl.SelectExamples(ds.Train, 8, icl.Mixed, 5)
	query := test[0]
	resCoT := icl.ChainOfThought(det, query, ctx)
	fmt.Println("--- model output (chain-of-thought) ---")
	fmt.Println(resCoT.Text)
	fmt.Printf("predicted: %s (confidence %.2f); true label: %s\n",
		logparse.LabelWord(resCoT.Label), resCoT.Confidence, logparse.LabelWord(query.Label))
}
