// Service: train a detector once, serve it over HTTP in-process, and stream
// a workflow execution's log against it — trace-level aggregation included.
// This is the library's deployment story end to end.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

func main() {
	// 1. Train the detector (small budget; see cmd/anomalyd for full scale).
	det, report, err := core.Train(core.Options{
		Approach: core.SFT, Model: "distilbert-base-uncased",
		TrainSize: 600, PretrainSteps: 200, Epochs: 3, Debias: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector trained: %d params, held-out %s\n\n", report.Params, report.Test)

	// 2. Serve it over HTTP and query like a monitoring agent would.
	srv := httptest.NewServer(core.NewServer(det))
	defer srv.Close()
	ds := flowbench.Generate(flowbench.Genome, 7).Subsample(10, 10, 40, 8)

	body, _ := json.Marshal(core.DetectRequest{LogLine: logparse.LogLine(ds.Test[0])})
	resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var out core.DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /v1/detect -> %s (score %.3f; true %s)\n\n",
		out.Category, out.Score, logparse.LabelWord(ds.Test[0].Label))

	// 3. Stream a log through the monitor and alert on anomalies.
	var logBuf bytes.Buffer
	for _, j := range ds.Test {
		logBuf.WriteString(logparse.LogLine(j))
		logBuf.WriteByte('\n')
	}
	fmt.Println("streaming the execution log through core.Monitor:")
	mrep, err := core.Monitor(det, &logBuf, func(a core.Alert) {
		fmt.Printf("  ALERT %s: %s\n", a.Result, truncate(logparse.Sentence(a.Job), 60))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d lines, %d alerts, %d traces flagged online\n\n",
		mrep.Processed, mrep.Alerts, mrep.FlaggedTraces)

	// 4. Trace-level verdicts.
	fmt.Println("trace verdicts:")
	for _, v := range core.DetectTraces(det, ds.Test, core.DefaultTracePolicy()) {
		status := "ok"
		if v.Flagged {
			status = "FLAGGED"
		}
		fmt.Printf("  trace %3d: %2d/%2d jobs abnormal -> %s\n", v.TraceID, v.Anomalous, v.Jobs, status)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.TrimSpace(s[:n]) + "..."
}
