// Transfer learning: fine-tune on one workflow, evaluate on another, then
// recover accuracy with (a) target-domain fine-tuning and (b) head-only
// training that avoids catastrophic forgetting — the paper's Figures 10/11
// and Table II as a runnable walkthrough.
//
//	go run ./examples/transfer
package main

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/sft"
	"repro/internal/tokenizer"
)

func main() {
	genome := flowbench.Generate(flowbench.Genome, 42).Subsample(800, 100, 250, 1)
	montage := flowbench.Generate(flowbench.Montage, 42).Subsample(800, 100, 250, 1)

	// A shared vocabulary lets one model serve both workflows.
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(genome.Train)...)
	corpus = append(corpus, logparse.Corpus(montage.Train)...)
	tok := tokenizer.Build(corpus)
	base := models.MustGet("bert-base-uncased").Build(tok.VocabSize())
	pretrain.MLM(base, tok, corpus, pretrain.Options{Steps: 300, LR: 3e-3, Seed: 2})

	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = 3

	// 1. Train on 1000 Genome (D1); evaluate on both domains.
	d1 := sft.NewClassifier(base.Clone(), tok)
	sft.Train(d1, sft.JobExamples(genome.Train), nil, cfg)
	fmt.Printf("trained on genome:   genome acc=%.4f | montage acc=%.4f\n",
		sft.Evaluate(d1, genome.Test).Accuracy(), sft.Evaluate(d1, montage.Test).Accuracy())

	// 2. Continue fine-tuning all parameters on Montage (D2): montage
	// improves, but genome degrades — catastrophic forgetting.
	d12 := sft.NewClassifier(d1.Model.Clone(), tok)
	sft.Train(d12, sft.JobExamples(montage.Train), nil, cfg)
	fmt.Printf("then all-params D2:  genome acc=%.4f | montage acc=%.4f  (forgetting)\n",
		sft.Evaluate(d12, genome.Test).Accuracy(), sft.Evaluate(d12, montage.Test).Accuracy())

	// 3. Head-only sequential training: freeze the backbone first.
	frozen := sft.NewClassifier(base.Clone(), tok)
	frozen.Model.FreezeBackbone()
	sft.Train(frozen, sft.JobExamples(genome.Train), nil, cfg)
	sft.Train(frozen, sft.JobExamples(montage.Train), nil, cfg)
	fmt.Printf("head-only D1+D2:     genome acc=%.4f | montage acc=%.4f  (retained)\n",
		sft.Evaluate(frozen, genome.Test).Accuracy(), sft.Evaluate(frozen, montage.Test).Accuracy())

	// 4. Fine-tuning on increasing shares of target data (Figure 11).
	fmt.Println("\ntarget-domain data vs montage accuracy (genome-trained start):")
	for _, pct := range []int{0, 25, 50, 100} {
		c := sft.NewClassifier(d1.Model.Clone(), tok)
		n := len(montage.Train) * pct / 100
		if n > 0 {
			ft := cfg
			ft.Epochs = 2
			sft.Train(c, sft.JobExamples(montage.Train[:n]), nil, ft)
		}
		fmt.Printf("  %3d%% target data: montage acc=%.4f\n", pct, sft.Evaluate(c, montage.Test).Accuracy())
	}
}
