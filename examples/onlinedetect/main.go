// Online detection: stream a job's log fields one at a time through a
// fine-tuned classifier, reproducing the paper's real-time detection
// scenario (Figures 7 and 8) — including the moment the prediction flips to
// anomalous as the incriminating feature arrives.
//
//	go run ./examples/onlinedetect
package main

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/sft"
	"repro/internal/tokenizer"
)

func main() {
	ds := flowbench.Generate(flowbench.Genome, 42).Subsample(800, 100, 300, 1)
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	model := models.MustGet("bert-base-uncased").Build(tok.VocabSize())
	pretrain.MLM(model, tok, corpus, pretrain.Options{Steps: 300, LR: 3e-3, Seed: 2})
	clf := sft.NewClassifier(model, tok)
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = 3
	sft.Train(clf, sft.JobExamples(ds.Train), nil, cfg)

	// Find an anomalous job the model ultimately detects, then replay its
	// features as a stream.
	var job flowbench.Job
	for _, j := range ds.Test {
		if j.Label == 1 {
			if pred, _ := clf.PredictJob(j); pred == 1 {
				job = j
				break
			}
		}
	}
	fmt.Printf("streaming job (true label: %s, injected anomaly: %s)\n\n",
		logparse.LabelWord(job.Label), job.Anomaly)
	for _, step := range sft.OnlineTrace(clf, job) {
		fmt.Printf("T%d: %s\n  ==> label: LABEL_%d, score: %.4f\n",
			step.K, step.Sentence, step.Label, step.Score)
	}

	// Explain the alert: occlusion attribution names the feature that
	// carries the anomaly signal.
	attrs := sft.Attribute(clf, job)
	fmt.Println("\nfeature attribution (occlusion, sorted by |impact| on anomaly score):")
	for _, a := range attrs[:4] {
		fmt.Printf("  %-18s value=%-12s delta=%+.4f\n", a.Feature, logparse.FormatValue(a.Value), a.Delta)
	}
	fmt.Printf("top culprit: %s\n", sft.TopCulprit(attrs))

	// Aggregate early-detection statistics over the whole test set (Fig 8).
	hist, missed := sft.EarlyDetection(clf, ds.Test)
	fmt.Println("\nearly detection histogram (first feature at which the true label is predicted):")
	for i, name := range flowbench.FeatureNames {
		fmt.Printf("  %-18s %4d\n", name, hist[i])
	}
	fmt.Printf("  %-18s %4d\n", "(never correct)", missed)
}
